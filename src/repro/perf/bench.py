"""The ``repro bench`` harness: measure and persist the perf trajectory.

Times the library's hot paths on registered benchmarks — end-to-end
synthesis, one cycle-accurate simulation, Monte-Carlo latency serial vs
parallel, and the exact expected-latency enumeration — and renders the
measurements as a JSON document with deterministic structure (sorted
keys, fixed rounding, stable section names).  ``BENCH_core.json`` at the
repository root is the committed trajectory: every perf-affecting PR
regenerates it, so a regression shows up as a diff.

The *timing* values naturally vary run to run; every *result* value in
the document (cycle counts, expectations, Monte-Carlo means) is
deterministic and doubles as a cross-machine golden check.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..benchmarks.registry import core_benchmark_names
from ..resources.spec import BernoulliSpec, CompletionSpec, as_completion_spec
from .engine import resolve_workers

#: benchmarks the core bench sweeps — every fixed registered design,
#: straight from the registry (the single source of the name list); the
#: AR-lattice row is the heaviest legacy enumeration (16 TAU ops,
#: 65536 assignments) and the fdct/ewf rows the largest graphs
CORE_BENCHMARKS = core_benchmark_names()

#: extra Monte-Carlo trials the vectorized engine is timed over — the
#: lockstep engine's throughput only shows at batch scale
BATCH_TRIALS_FACTOR = 50


def _time_call(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time and the (last) return value."""
    best = float("inf")
    value: object = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best, value


def _round(seconds: float) -> float:
    return round(seconds, 6)


@dataclass(frozen=True)
class BenchReport:
    """One full bench run, renderable as byte-stable JSON."""

    data: dict

    def to_json(self) -> str:
        return json.dumps(self.data, indent=2, sort_keys=True) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def render(self) -> str:
        lines = [
            f"repro bench — trials={self.data['trials']}, "
            f"workers={self.data['workers']}, seed={self.data['seed']}"
            + (" (quick)" if self.data["quick"] else "")
        ]
        for name in sorted(self.data["benchmarks"]):
            row = self.data["benchmarks"][name]
            mc = row["monte_carlo"]
            lines.append(
                f"  {name}: synth {1e3 * row['synthesize_s']:.1f} ms, "
                f"sim {1e3 * row['simulate_s']:.2f} ms, "
                f"MC {mc['serial_s']:.3f} s serial / "
                f"{mc['parallel_s']:.3f} s @ {self.data['workers']} "
                f"workers (×{mc['speedup']:.2f}), "
                f"mean {mc['mean_cycles']:.3f} cycles"
            )
            exact = row.get("exact_expectation")
            if exact is not None:
                lines.append(
                    f"    exact E[latency] {exact['value']:.4f} cycles "
                    f"in {exact['seconds']:.3f} s "
                    f"({exact['assignments']} assignments)"
                )
            engine = row.get("exact_engine")
            if engine is not None:
                lines.append(
                    f"    exact engine {engine['mean_cycles']:.4f} cycles "
                    f"in {1e3 * engine['seconds']:.2f} ms "
                    f"({engine['method']}, cut {engine['cut_width']}, "
                    f"{engine['states']} states)"
                )
            batch = row.get("batch_mc")
            if batch is not None:
                lines.append(
                    f"    batch MC {batch['trials']} trials in "
                    f"{batch['seconds']:.3f} s "
                    f"({batch['trials_per_s']:,.0f} trials/s, "
                    f"×{batch['speedup_vs_serial']:.0f} vs serial)"
                )
        return "\n".join(lines)


def _bench_row(
    quick: bool,
    trials: int,
    workers: int,
    seed: int,
    p: "float | str | CompletionSpec",
    repeats: int,
    cache_dir: "str | None",
    name: str,
) -> dict:
    """Time the core flows on one benchmark (pool- and fabric-safe).

    Module-level and fully determined by its arguments, so bench rows
    can be journaled by :func:`~repro.runtime.journal.checkpointed_map`
    and leased to fabric worker nodes like any other shard.
    """
    from ..analysis.exact_engine import analyze_dist_latency
    from ..analysis.latency import DistLatencyEvaluator, exact_expected_latency
    from ..api import synthesize
    from ..benchmarks.registry import benchmark
    from ..perf.cache import SynthesisCache
    from ..sim.batch import BatchSimulator, batch_supported
    from ..sim.runner import monte_carlo_latency
    from ..sim.simulator import simulate

    spec = as_completion_spec(p)
    cache = SynthesisCache(cache_dir) if cache_dir else None
    entry = benchmark(name)
    dfg = entry.dfg()
    allocation = entry.allocation()
    synth_s, result = _time_call(
        lambda: synthesize(dfg, allocation, cache=cache), repeats
    )
    system = result.distributed_system()
    # a fresh model per call: stateful models (Markov) must not carry
    # history from one timing repeat into the next
    sim_s, sim = _time_call(
        lambda: simulate(system, result.bound, spec.model(), seed=seed),
        max(repeats, 3),
    )
    serial_s, serial_stats = _time_call(
        lambda: monte_carlo_latency(
            system, result.bound, p=spec, trials=trials, seed=seed,
            workers=1, engine="scalar",
        ),
        repeats,
    )
    parallel_s, parallel_stats = _time_call(
        lambda: monte_carlo_latency(
            system, result.bound, p=spec, trials=trials, seed=seed,
            workers=workers, engine="scalar",
        ),
        repeats,
    )
    if parallel_stats != serial_stats:  # pragma: no cover - invariant
        raise AssertionError(
            f"parallel Monte-Carlo diverged from serial on {name!r}"
        )
    row = {
        "synthesize_s": _round(synth_s),
        "simulate_s": _round(sim_s),
        "simulated_cycles": sim.cycles,
        "monte_carlo": {
            "completion": spec.encode(),
            "trials": trials,
            "serial_s": _round(serial_s),
            "parallel_s": _round(parallel_s),
            "speedup": round(serial_s / max(parallel_s, 1e-9), 3),
            "mean_cycles": round(serial_stats.mean, 6),
            "p95_cycles": round(serial_stats.p95, 6),
        },
    }
    tau_ops = result.bound.telescopic_ops()
    evaluator = DistLatencyEvaluator(result.bound)
    if not spec.correlated:
        # plain Bernoulli keeps the scalar fast path (byte-identical to
        # the legacy float argument); per-unit resolves op marginals;
        # correlated specs have no i.i.d. analytical model, so the
        # exact sections are omitted from the row entirely
        p_value: "float | dict[str, float]" = (
            spec.p
            if isinstance(spec, BernoulliSpec)
            else spec.op_probabilities(result.bound, tau_ops)
        )
        exact_s, value = _time_call(
            lambda: exact_expected_latency(evaluator, tau_ops, p_value),
            repeats,
        )
        row["exact_expectation"] = {
            "seconds": _round(exact_s),
            "value": round(float(value), 6),
            "assignments": 2 ** len(tau_ops),
        }
        analysis_s, analysis = _time_call(
            lambda: analyze_dist_latency(evaluator, tau_ops, p_value),
            repeats,
        )
        row["exact_engine"] = {
            "seconds": _round(analysis_s),
            "method": analysis.method,
            "cut_width": analysis.cut_width,
            "states": analysis.states,
            "components": analysis.components,
            "mean_cycles": round(analysis.expectation, 6),
            "std_cycles": round(analysis.std, 6),
            "p99_cycles": analysis.quantile(0.99),
        }
    if batch_supported(system, result.bound):
        batch_engine = BatchSimulator(system, result.bound)
        batch_trials = trials * BATCH_TRIALS_FACTOR
        # one cold run grows the transition memo; the timed runs then
        # measure the steady-state (campaign) throughput
        batch_engine.latencies(spec, batch_trials, seed)
        batch_s, batch_stats = _time_call(
            lambda: batch_engine.statistics(spec, batch_trials, seed),
            repeats,
        )
        check = batch_engine.statistics(spec, trials, seed)
        if check != serial_stats:  # pragma: no cover - invariant
            raise AssertionError(
                f"batch Monte-Carlo diverged from scalar on {name!r}"
            )
        rate = batch_trials / max(batch_s, 1e-9)
        serial_rate = trials / max(serial_s, 1e-9)
        row["batch_mc"] = {
            "completion": spec.encode(),
            "trials": batch_trials,
            "seconds": _round(batch_s),
            "trials_per_s": round(rate, 1),
            "speedup_vs_serial": round(rate / serial_rate, 1),
            "mean_cycles": round(batch_stats.mean, 6),
            "memo_transitions": batch_engine.memo_size,
        }
    return row


def run_bench(
    benchmarks: Sequence[str] = CORE_BENCHMARKS,
    *,
    quick: bool = False,
    trials: int = 400,
    workers: "int | None" = 4,
    seed: int = 0,
    p: "float | str | CompletionSpec" = 0.7,
    repeats: int = 3,
    cache_dir: "str | None" = None,
    checkpoint_dir: "str | None" = None,
    policy=None,
    report=None,
    fabric=None,
) -> BenchReport:
    """Time the core flows on ``benchmarks`` and build the report.

    ``quick`` shrinks the Monte-Carlo trial count and timing repeats to
    CI-smoke scale; the JSON structure stays identical so quick and
    full runs diff cleanly (``compare_bench`` normalizes timings to
    per-trial rates where the trial counts differ).

    ``cache_dir`` backs synthesis with the per-pass artifact cache, so
    the synthesis column measures the cached path on a warm directory
    (the *result* values are identical either way — the equivalence is
    pinned by tests).

    ``checkpoint_dir`` journals each finished benchmark row: an
    interrupted sweep resumed over the same directory replays completed
    rows (with their originally measured timings) and re-times only the
    missing ones.  ``fabric`` (a :class:`~repro.fabric.FabricConfig`,
    requires ``checkpoint_dir``) leases whole rows to distributed
    worker nodes; timings are then measured on the node that computed
    the row, and all *result* values stay deterministic.

    ``p`` accepts any completion spec (float, spec string such as
    ``per-unit:mul=0.9,*=0.5`` or ``markov:0.7,0.5``, or a
    :class:`~repro.resources.spec.CompletionSpec`); correlated specs
    simply omit the analytical sections from each row.
    """
    from functools import partial

    from ..runtime.journal import checkpointed_map

    spec = as_completion_spec(p)
    if quick:
        trials = min(trials, 60)
        repeats = 1
    workers = resolve_workers(workers)
    names = list(benchmarks)
    run_key = (
        f"bench|quick={quick}|trials={trials}|seed={seed}"
        f"|{spec.key_fragment()}"
        f"|repeats={repeats}|benchmarks={','.join(names)}"
        if checkpoint_dir is not None
        else ""
    )
    # rows run serially here (each row parallelizes its own Monte-Carlo
    # column with ``workers``); the fabric distributes whole rows
    row_list = checkpointed_map(
        partial(
            _bench_row, quick, trials, workers, seed, spec, repeats,
            cache_dir,
        ),
        names,
        run_key=run_key,
        checkpoint=checkpoint_dir,
        workers=1,
        policy=policy,
        report=report,
        fabric=fabric,
    )
    rows = dict(zip(names, row_list))
    data = {
        "schema": 3,
        "quick": quick,
        "trials": trials,
        "workers": workers,
        "seed": seed,
        # ``p`` stays the plain float for Bernoulli runs so schema-2
        # baselines diff cleanly; richer specs store their encoding
        "p": spec.p if isinstance(spec, BernoulliSpec) else spec.encode(),
        "completion": spec.encode(),
        "environment": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
        },
        "benchmarks": rows,
    }
    return BenchReport(data=data)


# -- regression comparison ----------------------------------------------

#: default relative slowdown tolerated before a section counts as a
#: regression (``repro bench --compare`` exits non-zero above it)
REGRESSION_THRESHOLD = 0.20


def _comparable_metrics(row: dict) -> "dict[str, float]":
    """Per-call / per-trial seconds for every timed section of a row.

    Rates are normalized per trial where trial counts may differ, so a
    ``--quick`` run compares cleanly against a full baseline.
    """
    metrics: dict[str, float] = {}
    if "synthesize_s" in row:
        metrics["synthesize"] = row["synthesize_s"]
    if "simulate_s" in row:
        metrics["simulate"] = row["simulate_s"]
    mc = row.get("monte_carlo")
    if mc and mc.get("trials"):
        metrics["mc_serial_per_trial"] = mc["serial_s"] / mc["trials"]
    exact = row.get("exact_expectation")
    if exact is not None:
        metrics["exact_expectation"] = exact["seconds"]
    engine = row.get("exact_engine")
    if engine is not None:
        metrics["exact_engine"] = engine["seconds"]
    batch = row.get("batch_mc")
    if batch and batch.get("trials"):
        metrics["batch_mc_per_trial"] = batch["seconds"] / batch["trials"]
    return metrics


@dataclass(frozen=True)
class ComparisonRow:
    """One (benchmark, section) timing pair from two bench reports."""

    benchmark: str
    metric: str
    old_s: float
    new_s: float

    @property
    def speedup(self) -> float:
        """How much faster the new run is (>1 = faster, <1 = slower)."""
        return self.old_s / max(self.new_s, 1e-12)

    def regressed(self, threshold: float) -> bool:
        return self.new_s > self.old_s * (1.0 + threshold)


@dataclass(frozen=True)
class BenchComparison:
    """Diff of two bench reports: per-section speedups + a gate."""

    rows: tuple[ComparisonRow, ...]
    threshold: float
    value_drifts: tuple[str, ...] = ()

    @property
    def regressions(self) -> tuple[ComparisonRow, ...]:
        return tuple(
            row for row in self.rows if row.regressed(self.threshold)
        )

    @property
    def ok(self) -> bool:
        """Gate verdict: no timing regression and no result-value drift."""
        return not self.regressions and not self.value_drifts

    def render(self) -> str:
        lines = [
            f"bench comparison (regression threshold "
            f"{100 * self.threshold:.0f}%)",
            f"  {'benchmark':<12} {'section':<20} "
            f"{'old':>12} {'new':>12} {'speedup':>9}",
        ]
        for row in self.rows:
            flag = (
                "  << REGRESSION" if row.regressed(self.threshold) else ""
            )
            lines.append(
                f"  {row.benchmark:<12} {row.metric:<20} "
                f"{row.old_s:>10.6f} s {row.new_s:>10.6f} s "
                f"{row.speedup:>8.2f}x{flag}"
            )
        for drift in self.value_drifts:
            lines.append(f"  VALUE DRIFT: {drift}")
        if self.ok:
            lines.append("  ok — no section regressed")
        else:
            lines.append(
                f"  FAIL — {len(self.regressions)} section(s) regressed, "
                f"{len(self.value_drifts)} value drift(s)"
            )
        return "\n".join(lines)


def _report_completion(report: dict) -> "str | None":
    """The report's encoded completion spec, schema-2 compatible.

    Schema-3 reports carry an explicit ``completion`` field; earlier
    reports only stored a float ``p``, which denoted a Bernoulli model.
    """
    completion = report.get("completion")
    if completion is not None:
        return completion
    p = report.get("p")
    if isinstance(p, bool) or p is None:
        return None
    if isinstance(p, (int, float)):
        return f"bernoulli:{float(p)!r}"
    return str(p)


def _value_drifts(old: dict, new: dict) -> "list[str]":
    """Deterministic result values that changed between two reports.

    Timing noise is expected; *result* drift (exact expectations,
    Monte-Carlo means at identical trials/seed/completion model) means
    the engines changed behaviour and always fails the gate.  Reports
    with different completion specs only diff on timings.
    """
    drifts: list[str] = []
    old_completion = _report_completion(old)
    same_p = old_completion is not None and (
        old_completion == _report_completion(new)
    )
    same_mc = same_p and (
        old.get("trials") == new.get("trials")
        and old.get("seed") == new.get("seed")
    )
    old_rows = old.get("benchmarks", {})
    new_rows = new.get("benchmarks", {})
    for name in sorted(set(old_rows) & set(new_rows)):
        old_row, new_row = old_rows[name], new_rows[name]
        if same_p:
            for section in ("exact_expectation",):
                a = (old_row.get(section) or {}).get("value")
                b = (new_row.get(section) or {}).get("value")
                if a is not None and b is not None and a != b:
                    drifts.append(
                        f"{name}.{section}.value {a} -> {b}"
                    )
        if same_mc:
            a = (old_row.get("monte_carlo") or {}).get("mean_cycles")
            b = (new_row.get("monte_carlo") or {}).get("mean_cycles")
            if a is not None and b is not None and a != b:
                drifts.append(
                    f"{name}.monte_carlo.mean_cycles {a} -> {b}"
                )
        if old_row.get("simulated_cycles") != new_row.get(
            "simulated_cycles"
        ) and old.get("seed") == new.get("seed") and same_p:
            drifts.append(
                f"{name}.simulated_cycles "
                f"{old_row.get('simulated_cycles')} -> "
                f"{new_row.get('simulated_cycles')}"
            )
    return drifts


def compare_bench(
    old: dict,
    new: dict,
    *,
    threshold: float = REGRESSION_THRESHOLD,
) -> BenchComparison:
    """Diff two bench report documents (``BenchReport.data`` dicts).

    Sections present in both reports are compared on per-call (or
    per-trial, for the Monte-Carlo paths) seconds; sections only one
    side has are skipped, so reports from different schema versions
    still diff on their common surface.
    """
    rows: list[ComparisonRow] = []
    old_rows = old.get("benchmarks", {})
    new_rows = new.get("benchmarks", {})
    for name in sorted(set(old_rows) & set(new_rows)):
        old_metrics = _comparable_metrics(old_rows[name])
        new_metrics = _comparable_metrics(new_rows[name])
        for metric in old_metrics:
            if metric in new_metrics:
                rows.append(
                    ComparisonRow(
                        benchmark=name,
                        metric=metric,
                        old_s=old_metrics[metric],
                        new_s=new_metrics[metric],
                    )
                )
    return BenchComparison(
        rows=tuple(rows),
        threshold=threshold,
        value_drifts=tuple(_value_drifts(old, new)),
    )


def compare_bench_files(
    old_path: str,
    new_path: str,
    *,
    threshold: float = REGRESSION_THRESHOLD,
) -> BenchComparison:
    """``compare_bench`` over two report files on disk."""
    with open(old_path) as handle:
        old = json.load(handle)
    with open(new_path) as handle:
        new = json.load(handle)
    return compare_bench(old, new, threshold=threshold)
