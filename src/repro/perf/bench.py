"""The ``repro bench`` harness: measure and persist the perf trajectory.

Times the library's hot paths on registered benchmarks — end-to-end
synthesis, one cycle-accurate simulation, Monte-Carlo latency serial vs
parallel, and the exact expected-latency enumeration — and renders the
measurements as a JSON document with deterministic structure (sorted
keys, fixed rounding, stable section names).  ``BENCH_core.json`` at the
repository root is the committed trajectory: every perf-affecting PR
regenerates it, so a regression shows up as a diff.

The *timing* values naturally vary run to run; every *result* value in
the document (cycle counts, expectations, Monte-Carlo means) is
deterministic and doubles as a cross-machine golden check.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from .engine import resolve_workers

#: benchmarks the core bench sweeps (paper Table-2 designs; the
#: AR-lattice is the heaviest — 8 TAU ops, 65536-term exact expectation)
CORE_BENCHMARKS = ("diffeq", "ar_lattice")


def _time_call(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time and the (last) return value."""
    best = float("inf")
    value: object = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best, value


def _round(seconds: float) -> float:
    return round(seconds, 6)


@dataclass(frozen=True)
class BenchReport:
    """One full bench run, renderable as byte-stable JSON."""

    data: dict

    def to_json(self) -> str:
        return json.dumps(self.data, indent=2, sort_keys=True) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def render(self) -> str:
        lines = [
            f"repro bench — trials={self.data['trials']}, "
            f"workers={self.data['workers']}, seed={self.data['seed']}"
            + (" (quick)" if self.data["quick"] else "")
        ]
        for name in sorted(self.data["benchmarks"]):
            row = self.data["benchmarks"][name]
            mc = row["monte_carlo"]
            lines.append(
                f"  {name}: synth {1e3 * row['synthesize_s']:.1f} ms, "
                f"sim {1e3 * row['simulate_s']:.2f} ms, "
                f"MC {mc['serial_s']:.3f} s serial / "
                f"{mc['parallel_s']:.3f} s @ {self.data['workers']} "
                f"workers (×{mc['speedup']:.2f}), "
                f"mean {mc['mean_cycles']:.3f} cycles"
            )
            exact = row.get("exact_expectation")
            if exact is not None:
                lines.append(
                    f"    exact E[latency] {exact['value']:.4f} cycles "
                    f"in {exact['seconds']:.3f} s "
                    f"({exact['assignments']} assignments)"
                )
        return "\n".join(lines)


def _bench_row(
    quick: bool,
    trials: int,
    workers: int,
    seed: int,
    p: float,
    repeats: int,
    cache_dir: "str | None",
    name: str,
) -> dict:
    """Time the core flows on one benchmark (pool- and fabric-safe).

    Module-level and fully determined by its arguments, so bench rows
    can be journaled by :func:`~repro.runtime.journal.checkpointed_map`
    and leased to fabric worker nodes like any other shard.
    """
    from ..analysis.latency import DistLatencyEvaluator, exact_expected_latency
    from ..api import synthesize
    from ..benchmarks.registry import benchmark
    from ..perf.cache import SynthesisCache
    from ..resources.completion import BernoulliCompletion
    from ..sim.runner import monte_carlo_latency
    from ..sim.simulator import simulate

    cache = SynthesisCache(cache_dir) if cache_dir else None
    entry = benchmark(name)
    dfg = entry.dfg()
    allocation = entry.allocation()
    synth_s, result = _time_call(
        lambda: synthesize(dfg, allocation, cache=cache), repeats
    )
    system = result.distributed_system()
    model = BernoulliCompletion(p)
    sim_s, sim = _time_call(
        lambda: simulate(system, result.bound, model, seed=seed),
        max(repeats, 3),
    )
    serial_s, serial_stats = _time_call(
        lambda: monte_carlo_latency(
            system, result.bound, p=p, trials=trials, seed=seed,
            workers=1,
        ),
        repeats,
    )
    parallel_s, parallel_stats = _time_call(
        lambda: monte_carlo_latency(
            system, result.bound, p=p, trials=trials, seed=seed,
            workers=workers,
        ),
        repeats,
    )
    if parallel_stats != serial_stats:  # pragma: no cover - invariant
        raise AssertionError(
            f"parallel Monte-Carlo diverged from serial on {name!r}"
        )
    row = {
        "synthesize_s": _round(synth_s),
        "simulate_s": _round(sim_s),
        "simulated_cycles": sim.cycles,
        "monte_carlo": {
            "trials": trials,
            "serial_s": _round(serial_s),
            "parallel_s": _round(parallel_s),
            "speedup": round(serial_s / max(parallel_s, 1e-9), 3),
            "mean_cycles": round(serial_stats.mean, 6),
            "p95_cycles": round(serial_stats.p95, 6),
        },
    }
    tau_ops = result.bound.telescopic_ops()
    if not (quick and len(tau_ops) > 12):
        evaluator = DistLatencyEvaluator(result.bound)
        exact_s, value = _time_call(
            lambda: exact_expected_latency(evaluator, tau_ops, p),
            repeats,
        )
        row["exact_expectation"] = {
            "seconds": _round(exact_s),
            "value": round(float(value), 6),
            "assignments": 2 ** len(tau_ops),
        }
    return row


def run_bench(
    benchmarks: Sequence[str] = CORE_BENCHMARKS,
    *,
    quick: bool = False,
    trials: int = 400,
    workers: "int | None" = 4,
    seed: int = 0,
    p: float = 0.7,
    repeats: int = 3,
    cache_dir: "str | None" = None,
    checkpoint_dir: "str | None" = None,
    policy=None,
    report=None,
    fabric=None,
) -> BenchReport:
    """Time the core flows on ``benchmarks`` and build the report.

    ``quick`` shrinks the Monte-Carlo trial count and timing repeats to
    CI-smoke scale and skips exact expectations wider than 12 TAU ops;
    the JSON structure stays identical so quick and full runs diff
    cleanly.

    ``cache_dir`` backs synthesis with the per-pass artifact cache, so
    the synthesis column measures the cached path on a warm directory
    (the *result* values are identical either way — the equivalence is
    pinned by tests).

    ``checkpoint_dir`` journals each finished benchmark row: an
    interrupted sweep resumed over the same directory replays completed
    rows (with their originally measured timings) and re-times only the
    missing ones.  ``fabric`` (a :class:`~repro.fabric.FabricConfig`,
    requires ``checkpoint_dir``) leases whole rows to distributed
    worker nodes; timings are then measured on the node that computed
    the row, and all *result* values stay deterministic.
    """
    from functools import partial

    from ..runtime.journal import checkpointed_map

    if quick:
        trials = min(trials, 60)
        repeats = 1
    workers = resolve_workers(workers)
    names = list(benchmarks)
    run_key = (
        f"bench|quick={quick}|trials={trials}|seed={seed}|p={p!r}"
        f"|repeats={repeats}|benchmarks={','.join(names)}"
        if checkpoint_dir is not None
        else ""
    )
    # rows run serially here (each row parallelizes its own Monte-Carlo
    # column with ``workers``); the fabric distributes whole rows
    row_list = checkpointed_map(
        partial(
            _bench_row, quick, trials, workers, seed, p, repeats,
            cache_dir,
        ),
        names,
        run_key=run_key,
        checkpoint=checkpoint_dir,
        workers=1,
        policy=policy,
        report=report,
        fabric=fabric,
    )
    rows = dict(zip(names, row_list))
    data = {
        "schema": 1,
        "quick": quick,
        "trials": trials,
        "workers": workers,
        "seed": seed,
        "p": p,
        "environment": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
        },
        "benchmarks": rows,
    }
    return BenchReport(data=data)
