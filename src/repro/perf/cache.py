"""Content-addressed simulation-result cache.

Regenerating a figure or sweep re-runs exactly the simulations that ran
last time: same design, same completion model, same seed, same
iteration count.  The cache turns that repetition into a lookup.  Keys
are SHA-256 digests over

* the **design fingerprint** — the serialized dataflow graph, the
  allocation (unit names, kinds, level delays), the binding and the
  execution order,
* the **controller fingerprint** — which controller system (its keys
  and FSM structure) drives the run,
* the **completion model fingerprint** — type and parameters,
* ``seed`` and ``iterations``.

A key therefore changes whenever anything that could change the outcome
changes; two processes always derive the same key for the same run
(nothing hashed depends on ``PYTHONHASHSEED`` or object identity).

Entries store the cheap, deterministic subset of a
:class:`~repro.sim.simulator.SimulationResult` (cycle counts, per-op
outcomes — never traces or datapaths), JSON-serializable so a cache can
persist to a directory and survive across processes.

On-disk entries are **self-healing**: every file embeds a SHA-256
checksum of its canonical payload and is published with an atomic
write-temp-then-rename, so a crash mid-``put`` can never tear an
entry.  A corrupt, truncated or checksum-failing file found by ``get``
is *quarantined* (renamed ``*.corrupt``), counted on the cache and
reported to the ambient :class:`~repro.runtime.policy.RunReport`, and
the result is simply recomputed — corruption costs time, never
correctness and never an exception out of ``get``.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Mapping
from typing import TYPE_CHECKING

from ..runtime.journal import atomic_write_text
from ..runtime.policy import record_event

from ..serialize import dfg_to_dict
from ..sim.simulator import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..binding.binder import BoundDataflowGraph
    from ..core.dfg import DataflowGraph
    from ..fsm.model import FSM
    from ..resources.allocation import ResourceAllocation
    from ..resources.completion import CompletionModel
    from ..scheduling.schedule import (
        OrderSchedule,
        TaubmSchedule,
        TimeStepSchedule,
    )
    from ..sim.controllers import ControllerSystem


def design_fingerprint(bound: "BoundDataflowGraph") -> str:
    """Stable digest of a bound design (DFG + allocation + binding)."""
    units = [
        {
            "name": unit.name,
            "class": unit.resource_class.value,
            "telescopic": unit.is_telescopic,
            "levels": list(unit.level_delays_ns),
        }
        for unit in bound.allocation
    ]
    payload = {
        "dfg": dfg_to_dict(bound.dfg),
        "units": units,
        "clock_ns": bound.allocation.clock_period_ns(),
        "binding": dict(sorted(bound.binding.items())),
        "edges": sorted(bound.execution_edges()),
    }
    return _digest(payload)


# ----------------------------------------------------------------------
# Synthesis-artifact fingerprints
#
# One stable digest per pipeline artifact type, all built from the exact
# serializations in :mod:`repro.serialize` — so a fingerprint changes if
# and only if the serialized artifact would.  :mod:`repro.pipeline` keys
# its per-pass cache on these.
# ----------------------------------------------------------------------
def dfg_fingerprint(dfg: "DataflowGraph") -> str:
    """Stable digest of a dataflow graph."""
    return _digest(dfg_to_dict(dfg))


def allocation_fingerprint(allocation: "ResourceAllocation") -> str:
    """Stable digest of an allocation (units, kinds, delays, clock)."""
    return _digest(
        {
            "units": [
                {
                    "name": unit.name,
                    "class": unit.resource_class.value,
                    "telescopic": unit.is_telescopic,
                    "levels": list(unit.level_delays_ns),
                }
                for unit in allocation
            ],
            "clock_ns": allocation.clock_period_ns(),
        }
    )


def schedule_fingerprint(schedule: "TimeStepSchedule") -> str:
    """Stable digest of a time-step schedule (graph + start times)."""
    from ..serialize import schedule_to_dict

    return _digest(
        {
            "dfg": dfg_fingerprint(schedule.dfg),
            "schedule": schedule_to_dict(schedule),
        }
    )


def order_fingerprint(order: "OrderSchedule") -> str:
    """Stable digest of an order-based schedule (chains + arcs)."""
    from ..serialize import order_to_dict

    return _digest(
        {
            "dfg": dfg_fingerprint(order.dfg),
            "order": order_to_dict(order),
        }
    )


def taubm_fingerprint(taubm: "TaubmSchedule") -> str:
    """Stable digest of a TAUBM schedule."""
    from ..serialize import taubm_to_dict

    return _digest(
        {
            "dfg": dfg_fingerprint(taubm.dfg),
            "taubm": taubm_to_dict(taubm),
        }
    )


def fsm_fingerprint(fsm: "FSM") -> str:
    """Stable digest of one FSM."""
    from ..serialize import fsm_to_dict

    return _digest(fsm_to_dict(fsm))


def distributed_fingerprint(unit) -> str:
    """Stable digest of a distributed control unit."""
    from ..serialize import distributed_to_dict

    return _digest(
        {
            "design": design_fingerprint(unit.bound),
            "unit": distributed_to_dict(unit),
        }
    )


def artifact_fingerprint(artifact: object) -> str:
    """Dispatch to the right fingerprint for any pipeline artifact."""
    from ..binding.binder import BoundDataflowGraph
    from ..control.distributed import DistributedControlUnit
    from ..core.dfg import DataflowGraph
    from ..fsm.model import FSM
    from ..resources.allocation import ResourceAllocation
    from ..scheduling.schedule import (
        OrderSchedule,
        TaubmSchedule,
        TimeStepSchedule,
    )

    if isinstance(artifact, DataflowGraph):
        return dfg_fingerprint(artifact)
    if isinstance(artifact, ResourceAllocation):
        return allocation_fingerprint(artifact)
    if isinstance(artifact, TimeStepSchedule):
        return schedule_fingerprint(artifact)
    if isinstance(artifact, OrderSchedule):
        return order_fingerprint(artifact)
    if isinstance(artifact, TaubmSchedule):
        return taubm_fingerprint(artifact)
    if isinstance(artifact, BoundDataflowGraph):
        return design_fingerprint(artifact)
    if isinstance(artifact, DistributedControlUnit):
        return distributed_fingerprint(artifact)
    if isinstance(artifact, FSM):
        return fsm_fingerprint(artifact)
    raise TypeError(
        f"no fingerprint for artifact type {type(artifact).__name__!r}"
    )


def system_fingerprint(system: "ControllerSystem") -> str:
    """Stable digest of a controller system's keys and FSM structure."""
    payload = {
        "keys": list(system.keys),
        "edges": list(system.dependence_edges()),
        "fsms": [
            {
                "name": fsm.name,
                "states": list(fsm.states),
                "initial": fsm.initial,
                "transitions": [str(t) for t in fsm.transitions],
                "initial_starts": sorted(fsm.initial_starts),
            }
            for fsm in (system.fsm(key) for key in system.keys)
        ],
    }
    return _digest(payload)


def model_fingerprint(model: "CompletionModel") -> str:
    """Stable digest of a completion model's type and parameters."""
    return _digest(_model_payload(model))


def _model_payload(model: "CompletionModel") -> dict:
    payload: dict = {"type": type(model).__qualname__}
    for name, value in sorted(vars(model).items()):
        if name.startswith("_"):
            # Mutable run state (trace cursors, Markov history) must not
            # leak into cache identity.
            continue
        if isinstance(value, (bool, int, float, str)) or value is None:
            payload[name] = value
        elif isinstance(value, (tuple, list)):
            payload[name] = [repr(v) for v in value]
        elif isinstance(value, Mapping):
            payload[name] = {
                str(k): repr(v) for k, v in sorted(value.items())
            }
        else:
            payload[name] = repr(value)
    return payload


def _digest(payload: object) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# Self-healing cache files
#
# One envelope for both caches: {"sha256": <digest of canonical
# payload>, "payload": {...}}, written atomically.  Reading verifies
# the checksum; anything unreadable or mismatching is quarantined and
# treated as a miss.  Legacy files (bare payloads from before the
# envelope existed) are still accepted — they simply carry no checksum.
# ----------------------------------------------------------------------
def _write_entry(file_path: str, payload: object) -> None:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    envelope = json.dumps(
        {
            "sha256": hashlib.sha256(text.encode()).hexdigest(),
            "payload": json.loads(text),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    atomic_write_text(file_path, envelope)


def _quarantine_entry(cache, file_path: str, reason: str) -> None:
    try:
        os.replace(file_path, file_path + ".corrupt")
    except OSError:  # pragma: no cover - racing cleanup
        pass
    cache.quarantined += 1
    record_event(
        None,
        "cache-quarantine",
        f"cache entry {os.path.basename(file_path)} {reason}; "
        "moved aside and recomputing",
    )


def _read_entry(cache, file_path: str) -> "object | None":
    """Verified payload of one cache file, or ``None`` (miss).

    Corruption of any shape — unreadable bytes, truncated JSON, a
    failing checksum — quarantines the file instead of raising.
    """
    try:
        with open(file_path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, UnicodeDecodeError):
        _quarantine_entry(cache, file_path, "is unreadable or truncated")
        return None
    if (
        isinstance(data, dict)
        and set(data.keys()) == {"sha256", "payload"}
    ):
        text = json.dumps(
            data["payload"], sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(text.encode()).hexdigest()
        if digest != data["sha256"]:
            _quarantine_entry(cache, file_path, "failed its checksum")
            return None
        return data["payload"]
    return data  # legacy bare payload (pre-envelope format)


def _result_to_dict(result: SimulationResult) -> dict:
    return {
        "cycles": result.cycles,
        "clock_ns": result.clock_ns,
        "start_cycles": dict(sorted(result.start_cycles.items())),
        "finish_cycles": dict(sorted(result.finish_cycles.items())),
        "iteration_finish_cycles": list(result.iteration_finish_cycles),
        "fast_outcomes": {
            op: list(v) for op, v in sorted(result.fast_outcomes.items())
        },
        "level_outcomes": {
            op: list(v) for op, v in sorted(result.level_outcomes.items())
        },
        "token_overruns": result.token_overruns,
    }


def _result_from_dict(data: Mapping) -> SimulationResult:
    return SimulationResult(
        cycles=int(data["cycles"]),
        clock_ns=float(data["clock_ns"]),
        start_cycles={
            k: int(v) for k, v in data["start_cycles"].items()
        },
        finish_cycles={
            k: int(v) for k, v in data["finish_cycles"].items()
        },
        iteration_finish_cycles=tuple(
            int(v) for v in data["iteration_finish_cycles"]
        ),
        fast_outcomes={
            op: tuple(bool(b) for b in v)
            for op, v in data["fast_outcomes"].items()
        },
        level_outcomes={
            op: tuple(int(b) for b in v)
            for op, v in data["level_outcomes"].items()
        },
        token_overruns=int(data["token_overruns"]),
    )


class SimulationCache:
    """In-memory, optionally directory-backed simulation result cache.

    ``path=None`` keeps entries in-process only; with a directory path
    every entry is additionally written as ``<key>.json`` and found
    again by any later process — regenerating a report after touching
    one benchmark re-simulates only that benchmark.
    """

    def __init__(self, path: "str | None" = None) -> None:
        self._memory: dict[str, SimulationResult] = {}
        self._path = path
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def key(
        self,
        system: "ControllerSystem",
        bound: "BoundDataflowGraph",
        model: "CompletionModel",
        *,
        seed: int,
        iterations: int,
    ) -> str:
        """Content address of one simulation run."""
        return _digest(
            {
                "design": design_fingerprint(bound),
                "system": system_fingerprint(system),
                "model": _model_payload(model),
                "seed": int(seed),
                "iterations": int(iterations),
            }
        )

    def get(self, key: str) -> "SimulationResult | None":
        result = self._memory.get(key)
        if result is None and self._path is not None:
            file_path = os.path.join(self._path, f"{key}.json")
            payload = _read_entry(self, file_path)
            if payload is not None:
                try:
                    result = _result_from_dict(payload)
                except (KeyError, TypeError, ValueError, AttributeError):
                    _quarantine_entry(
                        self, file_path, "does not decode to a result"
                    )
                    result = None
                else:
                    self._memory[key] = result
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        stored = SimulationResult(**_result_to_dict_kwargs(result))
        self._memory[key] = stored
        if self._path is not None:
            file_path = os.path.join(self._path, f"{key}.json")
            _write_entry(file_path, _result_to_dict(stored))


def _result_to_dict_kwargs(result: SimulationResult) -> dict:
    """Strip trace/datapath so cached entries stay value-only."""
    return {
        "cycles": result.cycles,
        "clock_ns": result.clock_ns,
        "start_cycles": dict(result.start_cycles),
        "finish_cycles": dict(result.finish_cycles),
        "iteration_finish_cycles": result.iteration_finish_cycles,
        "fast_outcomes": dict(result.fast_outcomes),
        "level_outcomes": dict(result.level_outcomes),
        "token_overruns": result.token_overruns,
    }


def simulate_cached(
    system: "ControllerSystem",
    bound: "BoundDataflowGraph",
    model: "CompletionModel",
    *,
    cache: "SimulationCache | None",
    seed: int = 0,
    iterations: int = 1,
    **kwargs,
) -> SimulationResult:
    """:func:`~repro.sim.simulator.simulate` through a cache.

    Only pure value runs are cacheable: a request recording a trace,
    driving a datapath or customizing monitors bypasses the cache (the
    extra artifacts are not content-addressed).
    """
    from ..sim.simulator import simulate

    cacheable = cache is not None and not kwargs
    if not cacheable:
        return simulate(
            system, bound, model, seed=seed, iterations=iterations, **kwargs
        )
    key = cache.key(system, bound, model, seed=seed, iterations=iterations)
    found = cache.get(key)
    if found is not None:
        return found
    result = simulate(
        system, bound, model, seed=seed, iterations=iterations
    )
    cache.put(key, result)
    return result


class SynthesisCache:
    """In-memory, optionally directory-backed synthesis-artifact cache.

    The pipeline (:mod:`repro.pipeline`) stores one JSON payload per
    executed pass, keyed by a digest of the pass name, the fingerprints
    of its input artifacts and its options.  ``path=None`` keeps entries
    in-process; with a directory every entry is also written as
    ``<key>.syn.json`` (the suffix keeps synthesis entries disjoint from
    :class:`SimulationCache` files, so both caches can share one
    ``--cache-dir``).
    """

    def __init__(self, path: "str | None" = None) -> None:
        self._memory: dict[str, dict] = {}
        self._path = path
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def __bool__(self) -> bool:
        # an *empty* cache is still a cache — never let ``if cache:``
        # silently drop a freshly-created one
        return True

    @staticmethod
    def key(
        pass_name: str,
        inputs: Mapping[str, str],
        options: Mapping[str, object],
    ) -> str:
        """Content address of one pass execution."""
        return _digest(
            {
                "pass": pass_name,
                "inputs": dict(sorted(inputs.items())),
                "options": dict(sorted(options.items())),
            }
        )

    def get(self, key: str) -> "dict | None":
        payload = self._memory.get(key)
        if payload is None and self._path is not None:
            file_path = os.path.join(self._path, f"{key}.syn.json")
            entry = _read_entry(self, file_path)
            if entry is not None and not isinstance(entry, dict):
                _quarantine_entry(
                    self, file_path, "does not decode to a pass payload"
                )
                entry = None
            if entry is not None:
                payload = entry
                self._memory[key] = payload
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def put(self, key: str, payload: Mapping) -> None:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._memory[key] = json.loads(text)
        if self._path is not None:
            file_path = os.path.join(self._path, f"{key}.syn.json")
            _write_entry(file_path, json.loads(text))
