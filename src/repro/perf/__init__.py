"""Deterministic parallel execution engine, result cache and bench.

``repro.perf`` is the scaling layer under every statistical experiment:

* :mod:`~repro.perf.engine` — :func:`parallel_map` fans independent
  trials out over a :class:`~concurrent.futures.ProcessPoolExecutor`
  with chunked submission and a guaranteed serial fallback; per-trial
  seeds come from :func:`derive_seed`, a stable hash of
  ``(base_seed, trial)``, so parallel output is byte-identical to
  serial output.
* :mod:`~repro.perf.cache` — content-addressed caches: a
  simulation-result cache keyed by (design fingerprint, completion
  model, seed, iterations) and the per-pass synthesis-artifact cache
  behind :mod:`repro.pipeline`; both make figure/sweep regeneration
  incremental and can share one ``--cache-dir``.
* :mod:`~repro.perf.bench` — the ``repro bench`` harness that times
  synthesis, simulation, Monte-Carlo (serial vs parallel) and exact
  expectation on the registered benchmarks and persists the perf
  trajectory in ``BENCH_core.json``.
"""

from .cache import (
    SimulationCache,
    SynthesisCache,
    artifact_fingerprint,
    design_fingerprint,
    simulate_cached,
)
from .engine import (
    derive_seed,
    derive_seed_text,
    deterministic_jitter,
    parallel_map,
    resolve_workers,
)
from .bench import BenchReport, run_bench

__all__ = [
    "BenchReport",
    "SimulationCache",
    "SynthesisCache",
    "artifact_fingerprint",
    "derive_seed",
    "derive_seed_text",
    "deterministic_jitter",
    "design_fingerprint",
    "parallel_map",
    "resolve_workers",
    "run_bench",
    "simulate_cached",
]
