"""IIR filter benchmarks (paper Table 2: "2nd IIR", "3rd IIR").

Direct-form-I IIR section of order ``N``::

    y[n] = Σ_{i=0..N} b_i · x[n−i]  +  Σ_{j=1..N} a_j · y[n−j]

Signed coefficients fold the feedback subtraction into additions, matching
the paper's adder-only allocations (``*:2, +:1`` for the 2nd-order row,
``*:3, +:2`` for the 3rd-order row).  Delayed samples ``x[n−i]``/``y[n−j]``
are primary inputs of the one-iteration dataflow graph.
"""

from __future__ import annotations

from ..core.builder import DFGBuilder
from ..core.dfg import DataflowGraph, OpRef
from ..errors import GraphError

FEEDFORWARD = (2, 3, 5, 7, 11)
FEEDBACK = (13, 17, 19, 23)


def iir_filter(order: int, name: "str | None" = None) -> DataflowGraph:
    """Direct-form-I IIR of the given order (2N+1 mults, 2N adds)."""
    if order < 1:
        raise GraphError("IIR order must be >= 1")
    if order + 1 > len(FEEDFORWARD) or order > len(FEEDBACK):
        raise GraphError(f"order {order} exceeds the coefficient table")
    b = DFGBuilder(name or f"iir{order}")
    xs = [b.input(f"x{i}") for i in range(order + 1)]
    ys = [b.input(f"y{j}") for j in range(1, order + 1)]
    products: list[OpRef] = []
    for i in range(order + 1):
        products.append(b.mul(f"mb{i}", xs[i], FEEDFORWARD[i]))
    for j in range(order):
        products.append(b.mul(f"ma{j + 1}", ys[j], FEEDBACK[j]))
    # Balanced accumulation tree over the 2N+1 products.
    level = 0
    current = products
    while len(current) > 1:
        nxt: list[OpRef] = []
        for k in range(0, len(current) - 1, 2):
            nxt.append(
                b.add(f"s{level}_{k // 2}", current[k], current[k + 1])
            )
        if len(current) % 2:
            nxt.append(current[-1])
        current = nxt
        level += 1
    b.output("y", current[0])
    return b.build()


def iir2() -> DataflowGraph:
    """The paper's "2nd IIR" row (5 mults, 4 adds)."""
    return iir_filter(2, name="iir2")


def iir3() -> DataflowGraph:
    """The paper's "3rd IIR" row (7 mults, 6 adds)."""
    return iir_filter(3, name="iir3")
