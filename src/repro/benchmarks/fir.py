"""FIR filter benchmarks (paper Table 2: "3rd FIR", "5th FIR").

A direct-form FIR with ``taps`` coefficient multiplications and a balanced
adder tree.  The paper's latency brackets (best 45 ns = 3 cycles for the
"3rd FIR" at a 15 ns clock) indicate graphs of this tap count; we name the
registry entries after the paper's rows and document the tap
interpretation in DESIGN.md.
"""

from __future__ import annotations

from ..core.builder import DFGBuilder
from ..core.dfg import DataflowGraph, OpRef
from ..errors import GraphError

#: Default coefficient values (arbitrary odd constants, documented data).
DEFAULT_COEFFICIENTS = (3, 5, 7, 11, 13, 17, 19, 23, 29, 31)


def fir_filter(
    taps: int,
    name: "str | None" = None,
    coefficients: "tuple[int, ...] | None" = None,
    tree_adds: bool = True,
) -> DataflowGraph:
    """Direct-form FIR: ``y = Σ c_i · x[n−i]``.

    ``tree_adds`` selects a balanced adder tree (more concurrency, the
    usual hardware form); ``False`` gives the serial accumulation chain.
    """
    if taps < 2:
        raise GraphError("an FIR filter needs at least two taps")
    coeffs = coefficients or DEFAULT_COEFFICIENTS
    if len(coeffs) < taps:
        raise GraphError(f"need {taps} coefficients, got {len(coeffs)}")
    b = DFGBuilder(name or f"fir{taps}")
    xs = [b.input(f"x{i}") for i in range(taps)]
    products: list[OpRef] = [
        b.mul(f"m{i}", xs[i], coeffs[i]) for i in range(taps)
    ]
    if tree_adds:
        level = 0
        current = products
        while len(current) > 1:
            nxt: list[OpRef] = []
            for k in range(0, len(current) - 1, 2):
                nxt.append(
                    b.add(f"a{level}_{k // 2}", current[k], current[k + 1])
                )
            if len(current) % 2:
                nxt.append(current[-1])
            current = nxt
            level += 1
        result = current[0]
    else:
        result = products[0]
        for i, product in enumerate(products[1:], start=1):
            result = b.add(f"a{i}", result, product)
    b.output("y", result)
    return b.build()


def fir3() -> DataflowGraph:
    """The paper's "3rd FIR" row (3 taps, see DESIGN.md)."""
    return fir_filter(3, name="fir3")


def fir5() -> DataflowGraph:
    """The paper's "5th FIR" row (5 taps, see DESIGN.md)."""
    return fir_filter(5, name="fir5")
