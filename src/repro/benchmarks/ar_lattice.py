"""The AR-lattice benchmark (paper Table 2, "AR-lattice" row).

The classic HLS "AR filter" workload: 16 multiplications and 12 additions
arranged as four product-sum sections (each a 4-product balanced tree),
where the second pair of sections consumes the first pair's outputs — a
multiplication-heavy graph with wide concurrency, scheduled by the paper
under four TAU multipliers and two adders.
"""

from __future__ import annotations

from ..core.builder import DFGBuilder
from ..core.dfg import DataflowGraph, OpRef

_COEFFS = (3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59)


def _section(
    b: DFGBuilder, tag: str, sources, coeffs
) -> OpRef:
    """4-product section: ``(s0·c0 + s1·c1) + (s2·c2 + s3·c3)``."""
    products = [
        b.mul(f"m{tag}{i}", sources[i], coeffs[i]) for i in range(4)
    ]
    left = b.add(f"a{tag}0", products[0], products[1])
    right = b.add(f"a{tag}1", products[2], products[3])
    return b.add(f"a{tag}2", left, right)


def ar_lattice() -> DataflowGraph:
    """Build the AR-lattice DFG (16 mults, 12 adds, depth 6)."""
    b = DFGBuilder("ar_lattice")
    xs = [b.input(f"x{i}") for i in range(12)]
    o1 = _section(b, "p", xs[0:4], _COEFFS[0:4])
    o2 = _section(b, "q", xs[4:8], _COEFFS[4:8])
    o3 = _section(b, "r", (o1, o2, xs[8], xs[9]), _COEFFS[8:12])
    o4 = _section(b, "s", (o1, o2, xs[10], xs[11]), _COEFFS[12:16])
    b.output("y0", o3)
    b.output("y1", o4)
    return b.build()
