"""The paper's running example DFGs (Figs. 2 and 3).

The paper draws the graphs without operand labels, so concrete inputs are
chosen freely; every structural property the text states is preserved and
asserted by tests:

* **Fig. 2** — six operations in four time steps; multiplications (bound
  to TAUs) occupy steps T0 and T2, so the TAUBM FSM has extension states
  exactly there and the latency ranges over 4..6 cycles.  Operation ``o1``
  depends only on ``o0`` (the lost-concurrency example of §2.3).
* **Fig. 3** — nine operations, five of them multiplications whose
  dependency graph has minimal clique count three (``(o0,o1)``, ``(o4)``,
  ``(o6,o8)``), so two allocated TAU multipliers force schedule-arc
  insertion; with two adders the order-based schedule inserts four arcs.
"""

from __future__ import annotations

from ..core.builder import DFGBuilder
from ..core.dfg import DataflowGraph


def paper_fig2_dfg() -> DataflowGraph:
    """The original DFG of Fig. 2(a) (1 TAU multiplier scenario's graph).

    Steps (ASAP): T0 = {o0, o3} (×), T1 = {o1} (+), T2 = {o2, o4} (×),
    T3 = {o5} (+).
    """
    b = DFGBuilder("fig2")
    a, c, d, g, j = b.inputs("a", "c", "d", "g", "j")
    o0 = b.mul("o0", a, c)
    o3 = b.mul("o3", d, g)
    o1 = b.add("o1", o0, j)
    o2 = b.mul("o2", o1, a)
    o4 = b.mul("o4", o1, o3)
    o5 = b.add("o5", o2, o4)
    b.output("out", o5)
    return b.build()


def paper_fig3_dfg() -> DataflowGraph:
    """The DFG behind Fig. 3 (2 TAU multipliers + 2 adders scenario).

    Multiplications {o0, o1, o4, o6, o8} with dependent pairs
    (o0 → o1) and (o6 → o8), o4 independent of all other multiplications
    (it waits only on the addition o3) — giving the three-clique dependency
    graph of Fig. 3(b).
    """
    b = DFGBuilder("fig3")
    ins = b.inputs("a", "c", "d", "e", "f", "g", "h", "i", "j")
    a, c, d, e, f, g, h, i, j = ins
    o0 = b.mul("o0", a, c)
    o6 = b.mul("o6", c, d)
    o3 = b.add("o3", e, f)
    o1 = b.mul("o1", o0, g)
    o8 = b.mul("o8", o6, h)
    o7 = b.add("o7", o6, i)
    o4 = b.mul("o4", o3, j)
    o2 = b.add("o2", o1, o3)
    o5 = b.add("o5", o2, o4)
    b.output("out", o5)
    return b.build()


def fig4_pathological_dfg(num_taus: int) -> DataflowGraph:
    """A single time step with ``num_taus`` independent multiplications.

    The Fig. 4(a) stress case: every multiplication is concurrent, so a
    centralized non-synchronized FSM must distinguish every combination of
    per-TAU progress — exponential state growth in ``num_taus``.  A final
    addition joins the products so the graph has one sink.
    """
    if num_taus < 1:
        raise ValueError("need at least one TAU operation")
    b = DFGBuilder(f"fig4_{num_taus}tau")
    products = []
    for k in range(num_taus):
        x = b.input(f"x{k}")
        y = b.input(f"y{k}")
        products.append(b.mul(f"m{k}", x, y))
    acc = products[0]
    for k, product in enumerate(products[1:], start=1):
        acc = b.add(f"a{k}", acc, product)
    if len(products) == 1:
        acc = b.add("a1", products[0], b.input("z"))
    b.output("out", acc)
    return b.build()
