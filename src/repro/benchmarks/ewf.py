"""An elliptic-wave-filter-style benchmark (extension workload).

The fifth-order elliptic wave filter is the traditional "large" HLS
benchmark (34 operations, deep and mostly serial adder chains with a few
multiplications).  This module builds an EWF-*style* graph with the same
operation mix (26 additions, 8 multiplications) and comparable depth —
enough to exercise the controllers on a long-critical-path, low-concurrency
workload, the regime where the distributed scheme's advantage shrinks.
It is an extension beyond the paper's table and is documented as such.
"""

from __future__ import annotations

from ..core.builder import DFGBuilder
from ..core.dfg import DataflowGraph


def elliptic_wave_filter() -> DataflowGraph:
    """Build the EWF-style DFG (26 adds, 8 mults, depth 14)."""
    b = DFGBuilder("ewf")
    x = b.input("x")
    s = [b.input(f"s{i}") for i in range(7)]  # state registers
    c = [2, 3, 5, 7, 11, 13, 17, 19]

    t1 = b.add("t1", x, s[0])
    t2 = b.add("t2", t1, s[1])
    m1 = b.mul("m1", t2, c[0])
    t3 = b.add("t3", m1, s[2])
    t4 = b.add("t4", t3, t1)
    m2 = b.mul("m2", t4, c[1])
    t5 = b.add("t5", m2, s[3])
    t6 = b.add("t6", t5, t3)
    t7 = b.add("t7", t6, s[4])
    m3 = b.mul("m3", t7, c[2])
    t8 = b.add("t8", m3, t5)
    t9 = b.add("t9", t8, s[5])
    m4 = b.mul("m4", t9, c[3])
    t10 = b.add("t10", m4, t8)
    # Parallel branch from early nodes (gives the graph some width).
    m5 = b.mul("m5", t1, c[4])
    t11 = b.add("t11", m5, s[6])
    t12 = b.add("t12", t11, t2)
    m6 = b.mul("m6", t12, c[5])
    t13 = b.add("t13", m6, t11)
    t14 = b.add("t14", t13, t4)
    t15 = b.add("t15", t14, t6)
    m7 = b.mul("m7", t15, c[6])
    t16 = b.add("t16", m7, t13)
    t17 = b.add("t17", t16, t9)
    t18 = b.add("t18", t17, t10)
    m8 = b.mul("m8", t18, c[7])
    t19 = b.add("t19", m8, t16)
    t20 = b.add("t20", t19, t17)
    t21 = b.add("t21", t20, t10)
    t22 = b.add("t22", t21, t12)
    t23 = b.add("t23", t22, t14)
    t24 = b.add("t24", t23, t19)
    t25 = b.add("t25", t24, t20)
    t26 = b.add("t26", t25, t22)
    b.output("y", t26)
    return b.build()
