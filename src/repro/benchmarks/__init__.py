"""The paper's DFG benchmark suite plus extensions."""

from .ar_lattice import ar_lattice
from .diffeq import differential_equation
from .ewf import elliptic_wave_filter
from .fdct import fdct
from .fir import fir3, fir5, fir_filter
from .iir import iir2, iir3, iir_filter
from .paper_examples import (
    fig4_pathological_dfg,
    paper_fig2_dfg,
    paper_fig3_dfg,
)
from .registry import (
    BenchmarkEntry,
    all_benchmarks,
    benchmark,
    table2_benchmarks,
)

__all__ = [
    "BenchmarkEntry",
    "all_benchmarks",
    "ar_lattice",
    "benchmark",
    "differential_equation",
    "elliptic_wave_filter",
    "fdct",
    "fig4_pathological_dfg",
    "fir3",
    "fir5",
    "fir_filter",
    "iir2",
    "iir3",
    "iir_filter",
    "paper_fig2_dfg",
    "paper_fig3_dfg",
    "table2_benchmarks",
]
