"""Seeded parametric DFG families (``gen:...`` benchmark names).

The ten fixed benchmarks cap scenario diversity; this module grows the
registry with *generated* families — layered random DAGs whose shape is
controlled by five parameters and whose construction is a pure function
of the canonical parameter string:

``ops``
    total operation count (2..63, the batch engine's mask width),
``depth``
    number of dataflow layers; every non-first layer consumes at least
    one value produced by the layer directly above it, so the critical
    path really is ``depth`` operations deep,
``fanout``
    maximum consumers of any produced value (inputs included) — low
    fan-out yields near-chains, high fan-out yields broad reuse,
``mix``
    relative ``mul-add-sub`` op-type weights (e.g. ``2-1-1``),
``pressure``
    resource pressure: how many same-class operations share one
    arithmetic unit (units per class = ``ceil(count / pressure)``).
    Multipliers are allocated telescopic, matching the paper's setup.

Names parse with :func:`parse_family` and canonicalize to a fixed key
order, e.g. ``gen:ops=12,depth=4,fanout=2,mix=2-2-1,pressure=3,seed=0``;
:func:`family_entry` materializes the corresponding
:class:`~repro.benchmarks.registry.BenchmarkEntry`, which
``registry.benchmark()`` does automatically for any ``gen:`` name — so
simulation, bench, fault campaigns, the verify/lint gate and the fabric
consume generated families with zero special-casing.  Everything derives
from ``random.Random("dfg:" + canonical_name)``: the same name yields a
byte-identical graph in any process, forever.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.builder import DFGBuilder
from ..core.dfg import DataflowGraph
from ..errors import ReproError

#: ``gen:`` parameter defaults, in canonical key order.
_DEFAULTS = (
    ("ops", 12),
    ("depth", 4),
    ("fanout", 2),
    ("mix", "2-2-1"),
    ("pressure", 3),
    ("seed", 0),
)

#: op-type order the ``mix`` weights refer to
_CLASSES = ("mul", "add", "sub")

#: the batch engine packs completions into one int64 — stay inside it
_MAX_OPS = 63


@dataclass(frozen=True)
class FamilySpec:
    """One generated-family point: the parsed ``gen:`` parameters."""

    ops: int = 12
    depth: int = 4
    fanout: int = 2
    mix: str = "2-2-1"
    pressure: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 2 <= self.ops <= _MAX_OPS:
            raise ReproError(
                f"gen: ops must be in [2, {_MAX_OPS}], got {self.ops}"
            )
        if not 1 <= self.depth <= self.ops:
            raise ReproError(
                f"gen: depth must be in [1, ops], got {self.depth}"
            )
        if self.fanout < 1:
            raise ReproError(
                f"gen: fanout must be >= 1, got {self.fanout}"
            )
        if self.pressure < 1:
            raise ReproError(
                f"gen: pressure must be >= 1, got {self.pressure}"
            )
        if not self.mix_weights():
            raise ReproError(
                f"gen: mix needs at least one positive weight, "
                f"got {self.mix!r}"
            )

    def mix_weights(self) -> dict[str, int]:
        """Positive op-class weights parsed from ``mix``."""
        parts = self.mix.split("-")
        if len(parts) != len(_CLASSES):
            raise ReproError(
                f"gen: mix is MUL-ADD-SUB weights, got {self.mix!r}"
            )
        weights = {}
        for cls, part in zip(_CLASSES, parts):
            try:
                weight = int(part)
            except ValueError:
                raise ReproError(
                    f"gen: mix weight {part!r} is not an integer"
                ) from None
            if weight < 0:
                raise ReproError(
                    f"gen: mix weights must be >= 0, got {weight}"
                )
            if weight:
                weights[cls] = weight
        return weights

    @property
    def name(self) -> str:
        """The canonical ``gen:`` benchmark name (fixed key order)."""
        return "gen:" + ",".join(
            f"{key}={getattr(self, key)}" for key, _ in _DEFAULTS
        )

    def title(self) -> str:
        return (
            f"generated {self.ops}-op depth-{self.depth} family "
            f"(seed {self.seed})"
        )


def parse_family(name: str) -> FamilySpec:
    """Parse a ``gen:...`` benchmark name (any key order, defaults ok)."""
    prefix, sep, args = name.partition(":")
    if prefix != "gen" or not sep:
        raise ReproError(f"not a generated-family name: {name!r}")
    values: dict[str, object] = dict(_DEFAULTS)
    for item in args.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        key = key.strip()
        if not eq or key not in values:
            raise ReproError(
                f"gen: parameters are "
                f"{'/'.join(k for k, _ in _DEFAULTS)}, got {item!r}"
            )
        if key == "mix":
            values[key] = value.strip()
        else:
            try:
                values[key] = int(value)
            except ValueError:
                raise ReproError(
                    f"gen: {key} must be an integer, got {value!r}"
                ) from None
    return FamilySpec(**values)  # type: ignore[arg-type]


def _layer_sizes(spec: FamilySpec) -> list[int]:
    """Distribute ``ops`` over ``depth`` layers, extras to early layers."""
    base, extra = divmod(spec.ops, spec.depth)
    return [base + (1 if i < extra else 0) for i in range(spec.depth)]


def generate_dfg(spec: FamilySpec) -> DataflowGraph:
    """Build the family's dataflow graph (pure function of the spec)."""
    rng = random.Random(f"dfg:{spec.name}")
    builder = DFGBuilder(spec.name)
    weights = spec.mix_weights()
    classes = sorted(weights)
    class_weights = [weights[c] for c in classes]
    make = {
        "mul": builder.mul,
        "add": builder.add,
        "sub": builder.sub,
    }
    # every produced value (input or op output) carries a remaining
    # fan-out budget; ops draw operands from budgeted values only
    budget: dict[object, int] = {}
    inputs = 0
    consumers: dict[str, int] = {}

    def fresh_input():
        nonlocal inputs
        ref = builder.input(f"x{inputs}")
        inputs += 1
        budget[ref] = spec.fanout
        return ref

    def consume(candidates) -> object:
        pool = [ref for ref in candidates if budget.get(ref, 0) > 0]
        ref = rng.choice(pool) if pool else fresh_input()
        budget[ref] -= 1
        produced_by = getattr(ref, "op", None)
        if produced_by in consumers:
            consumers[produced_by] += 1
        return ref

    previous: list = []  # refs produced by the layer directly above
    earlier: list = []  # refs produced by any completed layer
    count = 0
    for layer, size in enumerate(_layer_sizes(spec)):
        produced = []
        for _ in range(size):
            cls = rng.choices(classes, weights=class_weights)[0]
            count += 1
            # the first operand ties the op to the previous layer so the
            # graph is genuinely `depth` layers deep; the second reuses
            # anything older (or a fresh input when budgets ran dry)
            a = consume(previous) if layer else fresh_input()
            second_pool = [r for r in earlier + previous if r is not a]
            b = consume(second_pool)
            ref = make[cls](f"{cls[0]}{count}", a, b)
            budget[ref] = spec.fanout
            consumers[ref.op] = 0
            produced.append(ref)
        earlier.extend(previous)
        previous = produced
    sinks = [name for name, n in sorted(consumers.items()) if n == 0]
    for i, name in enumerate(sinks):
        builder.output(f"y{i}", name)
    return builder.build()


def family_allocation_spec(spec: FamilySpec) -> str:
    """Allocation string under the family's resource pressure.

    Each op class present gets ``ceil(count / pressure)`` units;
    multipliers are telescopic (``T``), matching the paper's benchmarks.
    """
    dfg = generate_dfg(spec)
    counts: dict[str, int] = {}
    for op in dfg:
        cls = op.op_type.resource_class.value
        counts[cls] = counts.get(cls, 0) + 1
    parts = []
    for cls in _CLASSES:
        if cls in counts:
            units = max(1, math.ceil(counts[cls] / spec.pressure))
            suffix = "T" if cls == "mul" else ""
            parts.append(f"{cls}:{units}{suffix}")
    return ",".join(parts)


def family_entry(spec: FamilySpec):
    """The :class:`BenchmarkEntry` realizing one generated family."""
    from .registry import BenchmarkEntry

    return BenchmarkEntry(
        name=spec.name,
        title=spec.title(),
        factory=lambda: generate_dfg(spec),
        allocation_spec=family_allocation_spec(spec),
        in_table2=False,
        generated=True,
    )
