"""A fast-DCT-style benchmark (extension workload).

An 8-point one-dimensional fast DCT in the Loeffler style: a first
butterfly stage, an even half computed with two rotation blocks, and an
odd half with cascaded rotations — the classic image-compression kernel
HLS papers schedule.  Coefficients are integer placeholders (the graph
*shape* — butterflies feeding rotations feeding butterflies — is what the
controllers care about).  Mix: 15 multiplications, 14 additions,
14 subtractions; wider than the FIR/IIR rows and with real sub-graph
parallelism between the even and odd halves.
"""

from __future__ import annotations

from ..core.builder import DFGBuilder
from ..core.dfg import DataflowGraph, OpRef


def _rotation(
    b: DFGBuilder, tag: str, x: OpRef, y: OpRef, c1: int, c2: int
) -> tuple[OpRef, OpRef]:
    """A plane rotation: (x·c1 + y·c2, y·c1 − x·c2) — 4 mults, 1 add, 1 sub."""
    xc1 = b.mul(f"m{tag}a", x, c1)
    yc2 = b.mul(f"m{tag}b", y, c2)
    yc1 = b.mul(f"m{tag}c", y, c1)
    xc2 = b.mul(f"m{tag}d", x, c2)
    return (
        b.add(f"a{tag}", xc1, yc2),
        b.sub(f"s{tag}", yc1, xc2),
    )


def fdct() -> DataflowGraph:
    """Build the 8-point FDCT-style DFG."""
    b = DFGBuilder("fdct")
    x = [b.input(f"x{i}") for i in range(8)]

    # Stage 1: input butterflies.
    t = [b.add(f"b{i}", x[i], x[7 - i]) for i in range(4)]
    u = [b.sub(f"d{i}", x[i], x[7 - i]) for i in range(4)]

    # Even half: second butterfly + one rotation.
    e0 = b.add("e0", t[0], t[3])
    e1 = b.add("e1", t[1], t[2])
    e2 = b.sub("e2", t[0], t[3])
    e3 = b.sub("e3", t[1], t[2])
    y0 = b.add("y0", e0, e1)
    y4 = b.sub("y4", e0, e1)
    y2, y6 = _rotation(b, "r0", e2, e3, 6, 17)

    # Odd half: two rotations feeding output butterflies, plus the
    # sqrt(2) scaling multiplications of the Loeffler structure.
    o0, o1 = _rotation(b, "r1", u[0], u[3], 3, 21)
    o2, o3 = _rotation(b, "r2", u[1], u[2], 9, 13)
    p0 = b.add("p0", o0, o2)
    p1 = b.sub("p1", o0, o2)
    p2 = b.add("p2", o1, o3)
    p3 = b.sub("p3", o1, o3)
    k1 = b.mul("k1", p1, 11)
    k2 = b.mul("k2", p3, 11)
    k3 = b.mul("k3", p2, 7)
    y1 = b.add("y1", p0, k3)
    y7 = b.sub("y7", p0, k3)
    y3 = b.sub("y3", k1, k2)
    y5 = b.add("y5", k1, k2)

    for name, ref in (
        ("y0", y0),
        ("y1", y1),
        ("y2", y2),
        ("y3", y3),
        ("y4", y4),
        ("y5", y5),
        ("y6", y6),
        ("y7", y7),
    ):
        b.output(name, ref)
    return b.build()
