"""The HAL differential-equation solver benchmark (paper Table 1 & 2).

The classic high-level-synthesis benchmark: one Euler iteration of
``y'' + 3xy' + 3y = 0``::

    x1 = x + dx
    u1 = u - (3 * x * u * dx) - (3 * y * dx)
    y1 = y + u * dx
    c  = x1 < a

Six multiplications, two additions, two subtractions and one comparison
(served by the subtractor class).  The paper's allocation is two TAU
multipliers, one adder and one subtractor.
"""

from __future__ import annotations

from ..core.builder import DFGBuilder
from ..core.dfg import DataflowGraph


def differential_equation() -> DataflowGraph:
    """Build the Diff. benchmark DFG (11 operations)."""
    b = DFGBuilder("diffeq")
    x, y, u, dx, a = b.inputs("x", "y", "u", "dx", "a")
    m1 = b.mul("m1", 3, x)        # 3x
    m2 = b.mul("m2", u, dx)       # u*dx
    m3 = b.mul("m3", 3, y)        # 3y
    m4 = b.mul("m4", m1, m2)      # 3x*u*dx
    m5 = b.mul("m5", m3, dx)      # 3y*dx
    m6 = b.mul("m6", u, dx)       # u*dx (second instance, feeds y1)
    s1 = b.sub("s1", u, m4)       # u - 3x*u*dx
    s2 = b.sub("s2", s1, m5)      # u1
    a1 = b.add("a1", x, dx)       # x1
    a2 = b.add("a2", y, m6)       # y1
    c = b.lt("c", a1, a)          # x1 < a
    b.output("x1", a1)
    b.output("y1", a2)
    b.output("u1", s2)
    b.output("c", c)
    return b.build()
