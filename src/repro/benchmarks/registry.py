"""Benchmark registry: name → (DFG factory, paper allocation).

The allocation strings are the paper's Table 2 resource columns, with
``T`` marking the telescopic class (multipliers throughout).

Besides the ten fixed benchmarks, :func:`benchmark` materializes *seeded
generated families* on demand: any ``gen:...`` name (see
:mod:`repro.benchmarks.generate`) is parsed, canonicalized, built and
registered transparently, so every consumer of the registry — bench,
fault campaigns, the lint gate, the fabric CLIs — takes generated
designs with zero special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..core.dfg import DataflowGraph
from ..errors import ReproError
from ..resources.allocation import ResourceAllocation
from .ar_lattice import ar_lattice
from .diffeq import differential_equation
from .ewf import elliptic_wave_filter
from .fdct import fdct
from .fir import fir3, fir5
from .iir import iir2, iir3
from .paper_examples import paper_fig2_dfg, paper_fig3_dfg


@dataclass(frozen=True)
class BenchmarkEntry:
    """One registered benchmark with its paper allocation."""

    name: str
    title: str
    factory: Callable[[], DataflowGraph]
    allocation_spec: str
    in_table2: bool
    generated: bool = False

    def dfg(self) -> DataflowGraph:
        return self.factory()

    def allocation(self) -> ResourceAllocation:
        return ResourceAllocation.parse(self.allocation_spec)


_REGISTRY: dict[str, BenchmarkEntry] = {}


def _register(entry: BenchmarkEntry) -> None:
    _REGISTRY[entry.name] = entry


def register_benchmark(entry: BenchmarkEntry) -> BenchmarkEntry:
    """Register (or replace) a benchmark entry and return it."""
    _register(entry)
    return entry


_register(
    BenchmarkEntry(
        name="fir3",
        title="3rd FIR",
        factory=fir3,
        allocation_spec="mul:2T,add:1",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="fir5",
        title="5th FIR",
        factory=fir5,
        allocation_spec="mul:2T,add:1",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="iir2",
        title="2nd IIR",
        factory=iir2,
        allocation_spec="mul:2T,add:1",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="iir3",
        title="3rd IIR",
        factory=iir3,
        allocation_spec="mul:3T,add:2",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="diffeq",
        title="Diff.",
        factory=differential_equation,
        allocation_spec="mul:2T,add:1,sub:1",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="ar_lattice",
        title="AR-lattice",
        factory=ar_lattice,
        allocation_spec="mul:4T,add:2",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="fig2",
        title="Fig. 2 example",
        factory=paper_fig2_dfg,
        allocation_spec="mul:2T,add:1",
        in_table2=False,
    )
)
_register(
    BenchmarkEntry(
        name="fig3",
        title="Fig. 3 example",
        factory=paper_fig3_dfg,
        allocation_spec="mul:2T,add:2",
        in_table2=False,
    )
)
_register(
    BenchmarkEntry(
        name="fdct",
        title="8-pt FDCT (extension)",
        factory=fdct,
        allocation_spec="mul:2T,add:2,sub:2",
        in_table2=False,
    )
)
_register(
    BenchmarkEntry(
        name="ewf",
        title="EWF-style (extension)",
        factory=elliptic_wave_filter,
        allocation_spec="mul:2T,add:2",
        in_table2=False,
    )
)


def benchmark(name: str) -> BenchmarkEntry:
    """Look up a registered benchmark (materializing ``gen:`` families).

    A ``gen:...`` name is parsed, canonicalized (fixed key order,
    defaults filled in) and its entry built and registered on first use
    — the same name always denotes the same byte-identical design.
    """
    if name.startswith("gen:"):
        from .generate import family_entry, parse_family

        spec = parse_family(name)
        entry = _REGISTRY.get(spec.name)
        if entry is None:
            entry = register_benchmark(family_entry(spec))
        return entry
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)} "
            f"plus generated 'gen:...' families"
        ) from None


def all_benchmarks() -> tuple[BenchmarkEntry, ...]:
    """Every fixed registered benchmark, registration order.

    Generated ``gen:`` families are materialized on demand and
    deliberately excluded: default sweeps (benchmark listing, lint,
    committed baselines) cover the fixed set, and generated designs
    participate only when named explicitly.
    """
    return tuple(e for e in _REGISTRY.values() if not e.generated)


def core_benchmark_names() -> tuple[str, ...]:
    """The fixed (non-generated) benchmark names, registration order.

    This is the single source of the default benchmark list — the bench
    harness and CLI defaults derive from it instead of re-declaring it.
    """
    return tuple(e.name for e in _REGISTRY.values() if not e.generated)


def table2_benchmarks() -> tuple[BenchmarkEntry, ...]:
    """The six Table 2 rows, paper order."""
    return tuple(e for e in _REGISTRY.values() if e.in_table2)
