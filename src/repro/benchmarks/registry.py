"""Benchmark registry: name → (DFG factory, paper allocation).

The allocation strings are the paper's Table 2 resource columns, with
``T`` marking the telescopic class (multipliers throughout).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..core.dfg import DataflowGraph
from ..errors import ReproError
from ..resources.allocation import ResourceAllocation
from .ar_lattice import ar_lattice
from .diffeq import differential_equation
from .ewf import elliptic_wave_filter
from .fdct import fdct
from .fir import fir3, fir5
from .iir import iir2, iir3
from .paper_examples import paper_fig2_dfg, paper_fig3_dfg


@dataclass(frozen=True)
class BenchmarkEntry:
    """One registered benchmark with its paper allocation."""

    name: str
    title: str
    factory: Callable[[], DataflowGraph]
    allocation_spec: str
    in_table2: bool

    def dfg(self) -> DataflowGraph:
        return self.factory()

    def allocation(self) -> ResourceAllocation:
        return ResourceAllocation.parse(self.allocation_spec)


_REGISTRY: dict[str, BenchmarkEntry] = {}


def _register(entry: BenchmarkEntry) -> None:
    _REGISTRY[entry.name] = entry


_register(
    BenchmarkEntry(
        name="fir3",
        title="3rd FIR",
        factory=fir3,
        allocation_spec="mul:2T,add:1",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="fir5",
        title="5th FIR",
        factory=fir5,
        allocation_spec="mul:2T,add:1",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="iir2",
        title="2nd IIR",
        factory=iir2,
        allocation_spec="mul:2T,add:1",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="iir3",
        title="3rd IIR",
        factory=iir3,
        allocation_spec="mul:3T,add:2",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="diffeq",
        title="Diff.",
        factory=differential_equation,
        allocation_spec="mul:2T,add:1,sub:1",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="ar_lattice",
        title="AR-lattice",
        factory=ar_lattice,
        allocation_spec="mul:4T,add:2",
        in_table2=True,
    )
)
_register(
    BenchmarkEntry(
        name="fig2",
        title="Fig. 2 example",
        factory=paper_fig2_dfg,
        allocation_spec="mul:2T,add:1",
        in_table2=False,
    )
)
_register(
    BenchmarkEntry(
        name="fig3",
        title="Fig. 3 example",
        factory=paper_fig3_dfg,
        allocation_spec="mul:2T,add:2",
        in_table2=False,
    )
)
_register(
    BenchmarkEntry(
        name="fdct",
        title="8-pt FDCT (extension)",
        factory=fdct,
        allocation_spec="mul:2T,add:2,sub:2",
        in_table2=False,
    )
)
_register(
    BenchmarkEntry(
        name="ewf",
        title="EWF-style (extension)",
        factory=elliptic_wave_filter,
        allocation_spec="mul:2T,add:2",
        in_table2=False,
    )
)


def benchmark(name: str) -> BenchmarkEntry:
    """Look up a registered benchmark."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_benchmarks() -> tuple[BenchmarkEntry, ...]:
    """Every registered benchmark, registration order."""
    return tuple(_REGISTRY.values())


def table2_benchmarks() -> tuple[BenchmarkEntry, ...]:
    """The six Table 2 rows, paper order."""
    return tuple(e for e in _REGISTRY.values() if e.in_table2)
