"""Fault injection and resilience measurement for control units.

Three layers (see ``docs/architecture.md`` §"Fault injection & runtime
monitors"):

1. :mod:`repro.faults.models` — deterministic, composable fault injectors
   wrapping a :class:`~repro.sim.controllers.ControllerSystem` or a
   :class:`~repro.resources.completion.CompletionModel`,
2. the runtime invariant monitors live in :mod:`repro.sim.simulator`
   (:class:`~repro.sim.simulator.MonitorConfig`) and raise the structured
   exceptions of :mod:`repro.errors`,
3. :mod:`repro.faults.campaign` — the seeded fault-campaign runner that
   classifies every faulty run as detected / tolerated / silent and
   compares DIST-FSM against CENT-SYNC-FSM vulnerability.
"""

from .campaign import (
    STYLES,
    FaultCampaignReport,
    FaultTrialRecord,
    TrialFault,
    run_benchmark_campaign,
    run_campaign,
)
from .models import (
    DelayedCompletionFault,
    DroppedPulseFault,
    FaultInjector,
    FaultyControllerSystem,
    IntermittentCompletion,
    SpuriousPulseFault,
    StateFlipFault,
    StuckCompletionFault,
    inject,
)

__all__ = [
    "DelayedCompletionFault",
    "DroppedPulseFault",
    "FaultCampaignReport",
    "FaultInjector",
    "FaultTrialRecord",
    "FaultyControllerSystem",
    "IntermittentCompletion",
    "STYLES",
    "SpuriousPulseFault",
    "StateFlipFault",
    "StuckCompletionFault",
    "TrialFault",
    "inject",
    "run_benchmark_campaign",
    "run_campaign",
]
