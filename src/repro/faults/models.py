"""Composable, deterministic fault injectors for controller systems.

Each injector models one physical failure mode of the distributed control
unit at the level the cycle-accurate simulator observes it:

* :class:`StuckCompletionFault` — a unit's CSG wire stuck at 0/1 (the CSG
  lies about the telescope outcome),
* :class:`DelayedCompletionFault` — the CSG asserts late (marginal timing
  on the completion path),
* :class:`DroppedPulseFault` — a ``CC_*`` handshake pulse lost on an
  inter-controller net (no consumer sees it, no arrival latch sets),
* :class:`SpuriousPulseFault` — a glitch pulses a completion net whose
  producer did not complete,
* :class:`StateFlipFault` — a transient bit flip forcing one controller
  into a different state (SEU on the state register).

Injectors are deterministic: given the same construction parameters they
perturb the same cycles in the same way, so a seeded campaign is
bit-reproducible.  :func:`inject` wraps any
:class:`~repro.sim.controllers.ControllerSystem` into a
:class:`FaultyControllerSystem` that the unmodified simulator drives;
the wrapper advertises a ``fault_horizon`` so the simulator's quiescence
watchdog knows when no fault window can still open.

:class:`IntermittentCompletion` is the completion-model-level counterpart
(built on :class:`~repro.resources.completion.DelegatingCompletion`): it
degrades chosen executions of one operation to the slowest telescope
level, modelling an operand population drifting out of the fast group —
a performance fault rather than a protocol fault.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..errors import SimulationError
from ..fsm.signals import is_op_completion, op_of_completion
from ..resources.completion import DelegatingCompletion
from ..sim.controllers import ControllerSystem, SystemConfig, SystemStep

_FOREVER = 1 << 30  # horizon for unbounded fault windows


class FaultInjector(abc.ABC):
    """One deterministic perturbation of a running controller system."""

    #: short machine-readable fault-class tag (used by campaign reports)
    kind: str = "fault"

    @property
    def horizon(self) -> int:
        """Last cycle at which this fault may act *spontaneously*.

        Purely reactive faults (those that only modify events the system
        itself produced, like dropping a freshly latched token) return -1:
        they can never wake a quiescent system.
        """
        return -1

    def on_unit_completions(
        self, cycle: int, completions: "dict[str, bool]"
    ) -> None:
        """Mutate the CSG values presented to the controllers in place."""

    def suppress_pulses(
        self, cycle: int, emitted: frozenset[str]
    ) -> frozenset[str]:
        """Producer ops whose ``CC`` pulse dies on the net this cycle.

        ``emitted`` lists the producers that actually pulse this cycle
        (derived from a trial evaluation of the pure step function), so
        occurrence-counting injectors see real traffic.  Called exactly
        once per cycle.
        """
        return frozenset()

    def inject_pulses(self, cycle: int) -> frozenset[str]:
        """Producer ops whose net pulses spuriously this cycle."""
        return frozenset()

    def after_step(
        self,
        cycle: int,
        system: ControllerSystem,
        before: SystemConfig,
        step: SystemStep,
    ) -> SystemStep:
        """Rewrite the step result (states / arrival flags) post hoc."""
        return step

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human description naming the faulted net/unit."""

    def target(self) -> "dict[str, object]":
        """Machine-readable target description for campaign reports."""
        return {"kind": self.kind}


def _replace_config(step: SystemStep, config: SystemConfig) -> SystemStep:
    return SystemStep(
        config=config,
        outputs=step.outputs,
        starts=step.starts,
        completes=step.completes,
        overruns=step.overruns,
    )


@dataclass
class StuckCompletionFault(FaultInjector):
    """``C_<unit>`` stuck at ``value`` during ``[first_cycle, last_cycle]``.

    Stuck-at-1 makes the CSG *lie fast* — controllers complete operations
    whose sampled telescope level is not yet covered (caught by the timing
    monitor).  Stuck-at-0 makes it lie slow — two-level controllers fall
    back to the worst-case delay (tolerated by construction), re-checking
    multi-level or synchronized controllers may stall (caught by the
    deadlock watchdog).
    """

    unit: str
    value: bool
    first_cycle: int = 0
    last_cycle: "int | None" = None

    kind = "stuck-completion"

    @property
    def horizon(self) -> int:
        return self.last_cycle if self.last_cycle is not None else _FOREVER

    def on_unit_completions(self, cycle, completions) -> None:
        if cycle < self.first_cycle:
            return
        if self.last_cycle is not None and cycle > self.last_cycle:
            return
        completions[self.unit] = self.value

    def describe(self) -> str:
        window = (
            f"cycles {self.first_cycle}.."
            f"{'∞' if self.last_cycle is None else self.last_cycle}"
        )
        return (
            f"C_{self.unit} stuck-at-{int(self.value)} during {window}"
        )

    def target(self) -> "dict[str, object]":
        return {
            "kind": self.kind,
            "unit": self.unit,
            "value": int(self.value),
            "first_cycle": self.first_cycle,
            "last_cycle": self.last_cycle,
        }


@dataclass
class DelayedCompletionFault(FaultInjector):
    """``C_<unit>`` asserts ``delay`` cycles late within a cycle window.

    Models a slow completion-detection path: the unit's result is ready,
    the wire says it is not yet.  A correct telescopic protocol degrades
    to the long delay and stays functionally correct.
    """

    unit: str
    delay: int
    first_cycle: int = 0
    last_cycle: "int | None" = None
    _high_run: int = field(default=0, repr=False)

    kind = "delayed-completion"

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise SimulationError("completion delay must be >= 1 cycle")

    @property
    def horizon(self) -> int:
        if self.last_cycle is None:
            return _FOREVER
        return self.last_cycle + self.delay

    def on_unit_completions(self, cycle, completions) -> None:
        raw = completions.get(self.unit, False)
        self._high_run = self._high_run + 1 if raw else 0
        if cycle < self.first_cycle:
            return
        if self.last_cycle is not None and cycle > self.last_cycle:
            return
        if raw and self._high_run <= self.delay:
            completions[self.unit] = False

    def describe(self) -> str:
        return (
            f"C_{self.unit} delayed by {self.delay} cycle(s) from cycle "
            f"{self.first_cycle}"
        )

    def target(self) -> "dict[str, object]":
        return {
            "kind": self.kind,
            "unit": self.unit,
            "delay": self.delay,
            "first_cycle": self.first_cycle,
            "last_cycle": self.last_cycle,
        }


@dataclass
class DroppedPulseFault(FaultInjector):
    """Lose the ``occurrence``-th ``CC`` pulse of one completion net.

    The net is the ``CC_<producer_op>`` wire of the Fig. 7 netlist: the
    producer's FSM emits the pulse, but no consumer controller and no
    arrival latch sees it.  Starved consumers never fire — the canonical
    deadlock-class handshake fault.  ``occurrence=None`` cuts the net
    permanently (every pulse is lost).

    A single lost pulse is not always fatal: where the iteration loop
    permits, the producer's wrap-around re-execution emits the *next*
    iteration's pulse and revives the starved consumer at a latency cost —
    the campaign observes this self-healing as a tolerated fault.
    """

    producer_op: str
    occurrence: "int | None" = 1
    _seen: int = field(default=0, repr=False)

    kind = "dropped-pulse"

    def suppress_pulses(self, cycle, emitted) -> frozenset[str]:
        if self.producer_op in emitted:
            if self.occurrence is None:
                return frozenset({self.producer_op})
            self._seen += 1
            if self._seen == self.occurrence:
                return frozenset({self.producer_op})
        return frozenset()

    def describe(self) -> str:
        which = (
            "every pulse"
            if self.occurrence is None
            else f"pulse #{self.occurrence}"
        )
        return f"{which} dropped on completion net CC_{self.producer_op}"

    def target(self) -> "dict[str, object]":
        return {
            "kind": self.kind,
            "producer_op": self.producer_op,
            "occurrence": self.occurrence,
        }


@dataclass
class SpuriousPulseFault(FaultInjector):
    """Pulse the ``CC_<producer_op>`` net at ``cycle`` without completion.

    Every consumer waiting on the net sees a token that was never earned:
    it may start before the producer finished (caught by the datapath's
    premature-start check) or stack a duplicate token on a latched edge
    (an overrun, caught by the strict handshake monitor).
    """

    producer_op: str
    cycle: int

    kind = "spurious-pulse"

    @property
    def horizon(self) -> int:
        return self.cycle

    def inject_pulses(self, cycle) -> frozenset[str]:
        if cycle == self.cycle:
            return frozenset({self.producer_op})
        return frozenset()

    def describe(self) -> str:
        return (
            f"spurious pulse on completion net CC_{self.producer_op} at "
            f"cycle {self.cycle}"
        )

    def target(self) -> "dict[str, object]":
        return {
            "kind": self.kind,
            "producer_op": self.producer_op,
            "cycle": self.cycle,
        }


@dataclass
class StateFlipFault(FaultInjector):
    """Force one controller into a different state at ``cycle`` (SEU).

    ``pick`` deterministically selects the corrupted state among the
    controller's other states, so a seeded campaign covers the state space
    reproducibly.
    """

    controller: str
    cycle: int
    pick: int = 0

    kind = "state-flip"

    @property
    def horizon(self) -> int:
        return self.cycle

    def after_step(self, cycle, system, before, step) -> SystemStep:
        if cycle != self.cycle:
            return step
        keys = system.keys
        if self.controller not in keys:
            raise SimulationError(
                f"state-flip target {self.controller!r} is not a "
                f"controller of this system"
            )
        index = keys.index(self.controller)
        states = list(step.config.states)
        candidates = [
            s
            for s in system.fsm(self.controller).states
            if s != states[index]
        ]
        if not candidates:
            return step
        states[index] = candidates[self.pick % len(candidates)]
        return _replace_config(
            step,
            SystemConfig(
                states=tuple(states), flags=step.config.flags
            ),
        )

    def describe(self) -> str:
        return (
            f"state register of controller {self.controller!r} flipped at "
            f"cycle {self.cycle} (pick {self.pick})"
        )

    def target(self) -> "dict[str, object]":
        return {
            "kind": self.kind,
            "controller": self.controller,
            "cycle": self.cycle,
            "pick": self.pick,
        }


@dataclass
class IntermittentCompletion(DelegatingCompletion):
    """Degrade chosen executions of one op to the slowest telescope level.

    Completion-model-level fault: the operand population of ``op`` drifts
    out of the fast group for the execution indices in ``executions``.
    Ground truth and reported completion stay consistent, so a correct
    control unit *must* tolerate it — the fault only costs latency.
    """

    op: str = ""
    executions: Sequence[int] = ()
    _count: "dict[str, int]" = field(default_factory=dict, repr=False)

    kind = "intermittent-slow"

    def sample_level(self, op_name, unit, operands, rng) -> int:
        level = self.inner.sample_level(op_name, unit, operands, rng)
        if op_name == self.op:
            index = self._count.get(op_name, 0)
            self._count[op_name] = index + 1
            if index in self.executions:
                return unit.num_levels - 1
        return level

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        return self.sample_level(op_name, unit, operands, rng) == 0

    def reset(self) -> None:
        self._count.clear()
        super().reset()

    def describe(self) -> str:
        return (
            f"executions {sorted(self.executions)} of {self.op!r} forced "
            f"to the slowest telescope level"
        )


class FaultyControllerSystem:
    """A :class:`ControllerSystem` with fault injectors spliced in.

    Duck-types the simulator-facing surface of the wrapped system and
    applies every injector around each ``step``: CSG values are perturbed
    before the controllers see them, states and arrival latches after.
    The wrapper counts cycles itself (one ``step`` call per cycle), so it
    must not be reused across simulation runs — build a fresh one per run.
    """

    def __init__(
        self,
        inner: ControllerSystem,
        injectors: Sequence[FaultInjector],
    ) -> None:
        self._inner = inner
        self._injectors = tuple(injectors)
        self._cycle = 0

    # -- simulator-facing delegation ------------------------------------
    @property
    def keys(self) -> tuple[str, ...]:
        return self._inner.keys

    def fsm(self, key: str):
        return self._inner.fsm(key)

    def all_ops(self) -> frozenset[str]:
        return self._inner.all_ops()

    def dependence_edges(self) -> tuple[tuple[str, str, str], ...]:
        return self._inner.dependence_edges()

    def unit_completion_inputs(self) -> tuple[str, ...]:
        return self._inner.unit_completion_inputs()

    def initial_config(self) -> SystemConfig:
        return self._inner.initial_config()

    def initial_starts(self) -> frozenset[str]:
        return self._inner.initial_starts()

    # -- fault machinery -------------------------------------------------
    @property
    def injectors(self) -> tuple[FaultInjector, ...]:
        return self._injectors

    @property
    def fault_horizon(self) -> int:
        """Last cycle any injector may still act spontaneously."""
        return max((i.horizon for i in self._injectors), default=-1)

    def step(self, config: SystemConfig, unit_completions) -> SystemStep:
        cycle = self._cycle
        completions = dict(unit_completions)
        for injector in self._injectors:
            injector.on_unit_completions(cycle, completions)
        # Trial evaluation (the step function is pure): which completion
        # nets pulse this cycle, so net-glitch injectors see real traffic.
        trial = self._inner.step(config, completions)
        emitted = frozenset(
            op_of_completion(s)
            for s in trial.outputs
            if is_op_completion(s)
        )
        suppress: set[str] = set()
        injected: set[str] = set()
        for injector in self._injectors:
            suppress |= injector.suppress_pulses(cycle, emitted)
            injected |= injector.inject_pulses(cycle)
        if suppress or injected:
            step = self._inner.step(
                config,
                completions,
                suppress_pulses=frozenset(suppress),
                inject_pulses=frozenset(injected),
            )
        else:
            step = trial
        for injector in self._injectors:
            step = injector.after_step(cycle, self._inner, config, step)
        self._cycle += 1
        return step

    def describe(self) -> str:
        lines = [f"faulty controller system ({len(self._injectors)} faults):"]
        lines += [f"  - {i.describe()}" for i in self._injectors]
        return "\n".join(lines)


def inject(
    system: ControllerSystem, *injectors: FaultInjector
) -> FaultyControllerSystem:
    """Wrap ``system`` with the given fault injectors (fresh per run)."""
    if not injectors:
        raise SimulationError("inject() needs at least one fault injector")
    return FaultyControllerSystem(system, injectors)
