"""Seeded fault campaigns: measure that every safety net actually fires.

A campaign sweeps ``trials`` deterministically generated faults over one
synthesized design and classifies every faulty run:

* ``detected`` — a runtime invariant monitor fired (deadlock watchdog,
  occupancy / timing / handshake protocol checker, premature-start check),
* ``tolerated`` — the run completed and the end-to-end datapath oracle
  confirmed bit-correct results (the fault cost at most latency),
* ``silent`` — the run completed, no monitor fired, but
  :meth:`~repro.sim.datapath.Datapath.verify_iteration` found wrong
  values: silent corruption, the outcome a robust control scheme must
  never allow.

The same campaign runs against the distributed controllers (``dist``) and
the synchronized centralized baseline (``cent-sync``), so the report
quantifies their relative vulnerability instead of assuming it.  Every
fault, seed and input is derived from the campaign seed alone — two runs
with the same arguments produce byte-identical JSON.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from functools import partial
from collections.abc import Callable, Mapping, Sequence

from ..errors import (
    DeadlockError,
    InjectedFaultEscape,
    ProtocolError,
    SimulationError,
    VerificationError,
)
from ..fsm.signals import unit_of_completion
from ..resources.completion import BernoulliCompletion, CompletionModel
from ..resources.spec import BernoulliSpec, CompletionSpec, as_completion_spec
from ..sim.simulator import MonitorConfig, simulate
from .models import (
    DelayedCompletionFault,
    DroppedPulseFault,
    FaultInjector,
    IntermittentCompletion,
    SpuriousPulseFault,
    StateFlipFault,
    StuckCompletionFault,
    inject,
)

#: controller styles a campaign can target
STYLES = ("dist", "cent-sync")


@dataclass(frozen=True)
class TrialFault:
    """One generated fault: either a system injector or a model wrapper."""

    kind: str
    description: str
    target: Mapping[str, object]
    injector: "FaultInjector | None" = None
    wrap_completion: (
        "Callable[[CompletionModel], CompletionModel] | None"
    ) = None


@dataclass(frozen=True)
class FaultTrialRecord:
    """Outcome of one faulty run."""

    trial: int
    style: str
    fault_kind: str
    fault: str
    target: Mapping[str, object]
    outcome: str  # "detected" | "tolerated" | "silent"
    detector: "str | None"
    diagnostic: str
    cycles: "int | None"
    latency_delta: "int | None"

    def to_dict(self) -> dict:
        return {
            "trial": self.trial,
            "style": self.style,
            "fault_kind": self.fault_kind,
            "fault": self.fault,
            "target": dict(self.target),
            "outcome": self.outcome,
            "detector": self.detector,
            "diagnostic": self.diagnostic,
            "cycles": self.cycles,
            "latency_delta": self.latency_delta,
        }


@dataclass(frozen=True)
class FaultCampaignReport:
    """Classified results of one campaign over one or more styles."""

    benchmark: str
    trials: int
    seed: int
    #: the fast probability for plain Bernoulli campaigns (the legacy
    #: JSON shape), or the encoded completion spec for richer models
    p: "float | str"
    records: tuple[FaultTrialRecord, ...]

    # -- queries ---------------------------------------------------------
    def styles(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.style, None)
        return tuple(seen)

    def for_style(self, style: str) -> tuple[FaultTrialRecord, ...]:
        return tuple(r for r in self.records if r.style == style)

    def escapes(self, style: "str | None" = None) -> tuple[
        FaultTrialRecord, ...
    ]:
        """Silent-corruption records (optionally for one style)."""
        return tuple(
            r
            for r in self.records
            if r.outcome == "silent"
            and (style is None or r.style == style)
        )

    def summary(self, style: str) -> dict:
        """Outcome counts, per fault kind and total, for one style."""
        records = self.for_style(style)
        outcomes = ("detected", "tolerated", "silent")
        by_kind: dict[str, dict[str, int]] = {}
        for record in records:
            row = by_kind.setdefault(
                record.fault_kind, {o: 0 for o in outcomes}
            )
            row[record.outcome] += 1
        totals = {
            o: sum(1 for r in records if r.outcome == o) for o in outcomes
        }
        detectors: dict[str, int] = {}
        for record in records:
            if record.detector is not None:
                detectors[record.detector] = (
                    detectors.get(record.detector, 0) + 1
                )
        return {
            "trials": len(records),
            "totals": totals,
            "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
            "detectors": {k: detectors[k] for k in sorted(detectors)},
        }

    def check_no_escapes(self) -> None:
        """Raise :class:`InjectedFaultEscape` on any silent corruption."""
        escapes = self.escapes()
        if escapes:
            first = escapes[0]
            raise InjectedFaultEscape(
                f"fault campaign on {self.benchmark!r}: "
                f"{len(escapes)} silent corruption(s); first escape is "
                f"trial {first.trial} ({first.style}): {first.fault} — "
                f"{first.diagnostic}",
                fault=first.fault,
                benchmark=self.benchmark,
                trial=first.trial,
            )

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "trials": self.trials,
            "seed": self.seed,
            "p": self.p,
            "styles": {
                style: {
                    "summary": self.summary(style),
                    "records": [
                        r.to_dict() for r in self.for_style(style)
                    ],
                }
                for style in self.styles()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- reporting -------------------------------------------------------
    def render(self) -> str:
        from ..analysis.tables import render_table

        lines = [
            f"fault campaign: {self.benchmark}, {self.trials} trials/"
            f"style, seed {self.seed}, P={self.p}"
        ]
        for style in self.styles():
            summary = self.summary(style)
            lines.append("")
            lines.append(
                f"[{style}] detected {summary['totals']['detected']}, "
                f"tolerated {summary['totals']['tolerated']}, "
                f"silent {summary['totals']['silent']}"
            )
            rows = [
                [
                    kind,
                    str(row["detected"]),
                    str(row["tolerated"]),
                    str(row["silent"]),
                ]
                for kind, row in summary["by_kind"].items()
            ]
            lines.append(
                render_table(
                    ["fault kind", "detected", "tolerated", "silent"], rows
                )
            )
            if summary["detectors"]:
                fired = ", ".join(
                    f"{name}×{count}"
                    for name, count in summary["detectors"].items()
                )
                lines.append(f"monitors fired: {fired}")
        styles = self.styles()
        if len(styles) >= 2:
            lines.append("")
            lines.append("vulnerability comparison (silent corruptions):")
            for style in styles:
                count = len(self.escapes(style))
                lines.append(f"  {style:10s} {count}")
        for record in self.escapes():
            lines.append("")
            lines.append(
                f"ESCAPE trial {record.trial} [{record.style}] "
                f"{record.fault}: {record.diagnostic}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fault generation
# ---------------------------------------------------------------------------
def _fault_menu(system, bound, span: int) -> tuple[
    "Callable[[random.Random], TrialFault]", ...
]:
    """Deterministic per-style catalog of fault generators.

    ``span`` is the fault-free run length: fault cycles and windows are
    drawn inside it so injected faults actually land on live activity.
    """
    units = sorted(
        {unit_of_completion(s) for s in system.unit_completion_inputs()}
    )
    edges = system.dependence_edges()
    producers = sorted({producer for (_, _, producer) in edges})
    keys = system.keys
    telescopic_ops = sorted(
        op for op in system.all_ops() if bound.unit_of(op).is_telescopic
    )
    menu: list[Callable[[random.Random], TrialFault]] = []

    def _window(rng: random.Random) -> tuple[int, "int | None"]:
        first = rng.randrange(span)
        if rng.random() < 0.5:
            return first, None  # permanent fault
        return first, first + rng.randrange(1, span + 1)

    if units:

        def stuck(rng: random.Random) -> TrialFault:
            first, last = _window(rng)
            injector = StuckCompletionFault(
                unit=rng.choice(units),
                value=bool(rng.randrange(2)),
                first_cycle=first,
                last_cycle=last,
            )
            return TrialFault(
                kind=injector.kind,
                description=injector.describe(),
                target=injector.target(),
                injector=injector,
            )

        def delayed(rng: random.Random) -> TrialFault:
            first = rng.randrange(span)
            injector = DelayedCompletionFault(
                unit=rng.choice(units),
                delay=1 + rng.randrange(3),
                first_cycle=first,
                last_cycle=first + span,
            )
            return TrialFault(
                kind=injector.kind,
                description=injector.describe(),
                target=injector.target(),
                injector=injector,
            )

        menu += [stuck, delayed]

    if producers:

        def dropped(rng: random.Random) -> TrialFault:
            injector = DroppedPulseFault(
                producer_op=rng.choice(producers)
            )
            return TrialFault(
                kind=injector.kind,
                description=injector.describe(),
                target=injector.target(),
                injector=injector,
            )

        def spurious(rng: random.Random) -> TrialFault:
            injector = SpuriousPulseFault(
                producer_op=rng.choice(producers),
                cycle=rng.randrange(span),
            )
            return TrialFault(
                kind=injector.kind,
                description=injector.describe(),
                target=injector.target(),
                injector=injector,
            )

        menu += [dropped, spurious]

    def flip(rng: random.Random) -> TrialFault:
        injector = StateFlipFault(
            controller=rng.choice(keys),
            cycle=rng.randrange(span),
            pick=rng.randrange(16),
        )
        return TrialFault(
            kind=injector.kind,
            description=injector.describe(),
            target=injector.target(),
            injector=injector,
        )

    menu.append(flip)

    if telescopic_ops:

        def intermittent(rng: random.Random) -> TrialFault:
            op = rng.choice(telescopic_ops)
            fault = IntermittentCompletion(
                inner=BernoulliCompletion(1.0), op=op, executions=(0,)
            )
            description = fault.describe()
            return TrialFault(
                kind=IntermittentCompletion.kind,
                description=description,
                target={
                    "kind": IntermittentCompletion.kind,
                    "op": op,
                    "executions": [0],
                },
                wrap_completion=lambda inner: IntermittentCompletion(
                    inner=inner, op=op, executions=(0,)
                ),
            )

        menu.append(intermittent)

    return tuple(menu)


def _deterministic_inputs(bound) -> dict[str, int]:
    """Fixed, distinct, nonzero input values (reproducible oracle data)."""
    return {
        name: 3 + 7 * index
        for index, name in enumerate(bound.dfg.inputs)
    }


def _system_for(result, style: str):
    if style == "dist":
        return result.distributed_system()
    if style == "cent-sync":
        return result.cent_sync_system()
    raise SimulationError(
        f"unknown controller style {style!r}; choose from {STYLES}"
    )


def _classify(exc: SimulationError) -> "tuple[str, str | None]":
    """Map a raised monitor exception to (outcome, detector)."""
    if isinstance(exc, DeadlockError):
        return "detected", "deadlock"
    if isinstance(exc, ProtocolError):
        return "detected", f"protocol:{exc.kind}"
    if isinstance(exc, VerificationError):
        return "silent", None
    return "detected", "simulator"


def _run_trial(
    result,
    seed: int,
    spec: CompletionSpec,
    inputs: Mapping[str, int],
    task: tuple[str, int, int],
) -> FaultTrialRecord:
    """Execute one fully seeded faulty trial (process-pool safe).

    ``task`` is ``(style, span, trial)``.  Everything the trial touches —
    fault choice, simulation seed, input values — derives from those plus
    the campaign arguments, so the same task produces the same record in
    any process.  The fault menu is rebuilt per trial because its entries
    are closures (unpicklable); menu construction is cheap next to the
    three simulations a trial runs.
    """
    style, span, trial = task
    bound = result.bound
    monitors = MonitorConfig(handshake=True)
    probe = _system_for(result, style)
    menu = _fault_menu(probe, bound, span)
    rng = random.Random(f"{seed}:{style}:{trial}")
    fault = menu[rng.randrange(len(menu))](rng)
    sim_seed = rng.randrange(2**32)
    clean = simulate(
        _system_for(result, style),
        bound,
        spec.model(),
        seed=sim_seed,
        inputs=inputs,
    )
    system = _system_for(result, style)
    if fault.injector is not None:
        system = inject(system, fault.injector)
    completion: CompletionModel = spec.model()
    if fault.wrap_completion is not None:
        completion = fault.wrap_completion(completion)
    outcome: str
    detector: "str | None"
    diagnostic = ""
    cycles: "int | None" = None
    delta: "int | None" = None
    try:
        faulty = simulate(
            system,
            bound,
            completion,
            seed=sim_seed,
            inputs=inputs,
            monitors=monitors,
        )
    except SimulationError as exc:
        outcome, detector = _classify(exc)
        diagnostic = str(exc)
    else:
        outcome, detector = "tolerated", None
        cycles = faulty.cycles
        delta = faulty.cycles - clean.cycles
        diagnostic = (
            f"completed in {faulty.cycles} cycles "
            f"({delta:+d} vs clean), results bit-correct"
        )
    return FaultTrialRecord(
        trial=trial,
        style=style,
        fault_kind=fault.kind,
        fault=fault.description,
        target=fault.target,
        outcome=outcome,
        detector=detector,
        diagnostic=diagnostic,
        cycles=cycles,
        latency_delta=delta,
    )


def run_campaign(
    result,
    *,
    trials: int = 100,
    seed: int = 0,
    p: "float | str | CompletionSpec" = 0.7,
    styles: Sequence[str] = STYLES,
    benchmark: "str | None" = None,
    workers: "int | None" = 1,
    policy=None,
    report=None,
    checkpoint=None,
    fabric=None,
) -> FaultCampaignReport:
    """Sweep ``trials`` seeded faults per style over one synthesis result.

    ``result`` is a :class:`~repro.api.SynthesisResult`.  Every faulty run
    executes with the value-computing datapath and all runtime monitors
    (strict handshake included); a clean twin of each trial provides the
    latency baseline for tolerated faults.

    ``workers > 1`` fans the trials out over a process pool via
    :func:`~repro.perf.engine.parallel_map`; every trial is a pure
    function of ``(seed, style, trial)``, so the report — including its
    JSON rendering — is byte-identical to the serial run.

    ``policy`` (a :class:`~repro.runtime.policy.RunPolicy`) supervises
    the pool — worker crashes, hung trials and transient failures are
    recovered instead of aborting the campaign, with every recovery
    recorded in ``report``.  ``checkpoint`` (a directory or
    :class:`~repro.runtime.journal.CheckpointJournal`) persists each
    completed trial; an interrupted campaign resumed over the same
    journal replays the finished trials and produces JSON
    byte-identical to an uninterrupted run.  ``fabric`` (a
    :class:`~repro.fabric.FabricConfig`, requires ``checkpoint``)
    leases the trials to distributed worker nodes instead of a local
    pool — the report stays byte-identical, and node deaths mid-run
    are survived by lease revocation and reassignment.
    """
    from ..perf.cache import design_fingerprint
    from ..runtime.journal import checkpointed_map

    if trials < 1:
        raise SimulationError("a fault campaign needs >= 1 trial")
    spec = as_completion_spec(p)
    bound = result.bound
    name = benchmark if benchmark is not None else bound.dfg.name
    inputs = _deterministic_inputs(bound)
    tasks: list[tuple[str, int, int]] = []
    for style in styles:
        calibration = simulate(
            _system_for(result, style),
            bound,
            spec.model(),
            seed=seed,
            inputs=inputs,
        )
        span = max(calibration.cycles, 4)
        tasks.extend((style, span, trial) for trial in range(trials))
    # the run key names everything the records depend on (and not the
    # worker count: serial and parallel runs share a journal); plain
    # Bernoulli keeps the legacy p={p!r} fragment so old journals resume
    run_key = (
        f"fault-campaign|{design_fingerprint(bound)}|{name}"
        f"|trials={trials}|seed={seed}|{spec.key_fragment()}"
        f"|styles={','.join(styles)}"
        if checkpoint is not None
        else ""
    )
    records = checkpointed_map(
        partial(_run_trial, result, seed, spec, inputs),
        tasks,
        run_key=run_key,
        checkpoint=checkpoint,
        workers=workers,
        policy=policy,
        report=report,
        fabric=fabric,
    )
    return FaultCampaignReport(
        benchmark=name,
        trials=trials,
        seed=seed,
        p=spec.p if isinstance(spec, BernoulliSpec) else spec.encode(),
        records=tuple(records),
    )


def run_benchmark_campaign(
    benchmark_name: str,
    *,
    trials: int = 100,
    seed: int = 0,
    p: "float | str | CompletionSpec" = 0.7,
    styles: Sequence[str] = STYLES,
    allocation: "str | None" = None,
    workers: "int | None" = 1,
) -> FaultCampaignReport:
    """Synthesize a registered benchmark and run a campaign on it.

    The design is constructed through the synthesis pipeline, so a
    process-default artifact cache (``--cache-dir``) lets repeated
    campaigns on the same benchmark skip every synthesis pass.
    """
    from ..benchmarks.registry import benchmark
    from ..pipeline.manager import synthesize_design

    entry = benchmark(benchmark_name)
    result = synthesize_design(
        entry.dfg(),
        allocation if allocation is not None else entry.allocation(),
    )
    return run_campaign(
        result,
        trials=trials,
        seed=seed,
        p=p,
        styles=styles,
        benchmark=entry.name,
        workers=workers,
    )
