"""JSON (de)serialization of dataflow graphs, FSMs and whole designs.

Lets synthesized artifacts leave the Python process — for version control
of golden controllers, for diffing two synthesis runs, or for feeding
external tools.  Round-trips are exact: ``fsm_from_dict(fsm_to_dict(f))``
reproduces the machine bit-for-bit (tests enforce it).
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any, TYPE_CHECKING

from .core.dfg import ConstRef, DataflowGraph, InputRef, OpRef, Operand
from .core.ops import OpType, ResourceClass
from .errors import ReproError
from .fsm.model import FSM, Transition

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from .binding.binder import BoundDataflowGraph
    from .control.distributed import DistributedControlUnit
    from .resources.allocation import ResourceAllocation
    from .scheduling.schedule import (
        OrderSchedule,
        TaubmSchedule,
        TimeStepSchedule,
    )

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Dataflow graphs
# ----------------------------------------------------------------------
def _operand_to_dict(operand: Operand) -> dict[str, Any]:
    if isinstance(operand, InputRef):
        return {"kind": "input", "name": operand.name}
    if isinstance(operand, ConstRef):
        return {"kind": "const", "value": operand.value}
    assert isinstance(operand, OpRef)
    return {"kind": "op", "name": operand.op}


def _operand_from_dict(data: Mapping[str, Any]) -> Operand:
    kind = data.get("kind")
    if kind == "input":
        return InputRef(data["name"])
    if kind == "const":
        return ConstRef(int(data["value"]))
    if kind == "op":
        return OpRef(data["name"])
    raise ReproError(f"unknown operand kind {kind!r}")


def dfg_to_dict(dfg: DataflowGraph) -> dict[str, Any]:
    """Serialize a dataflow graph to plain JSON-compatible data."""
    return {
        "format": FORMAT_VERSION,
        "name": dfg.name,
        "inputs": list(dfg.inputs),
        "operations": [
            {
                "name": op.name,
                "type": op.op_type.name,
                "operands": [_operand_to_dict(o) for o in op.operands],
            }
            for op in dfg
        ],
        "outputs": dict(dfg.outputs),
    }


def dfg_from_dict(data: Mapping[str, Any]) -> DataflowGraph:
    """Rebuild a dataflow graph from :func:`dfg_to_dict` data."""
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported DFG format {data.get('format')!r}"
        )
    dfg = DataflowGraph(data["name"])
    for name in data["inputs"]:
        dfg.add_input(name)
    for record in data["operations"]:
        try:
            op_type = OpType[record["type"]]
        except KeyError:
            raise ReproError(
                f"unknown operation type {record['type']!r}"
            ) from None
        operands = [_operand_from_dict(o) for o in record["operands"]]
        dfg.add_op(record["name"], op_type, *operands)
    for out_name, op_name in data["outputs"].items():
        dfg.set_output(out_name, op_name)
    return dfg


# ----------------------------------------------------------------------
# FSMs
# ----------------------------------------------------------------------
def fsm_to_dict(fsm: FSM) -> dict[str, Any]:
    """Serialize an FSM to plain JSON-compatible data."""
    return {
        "format": FORMAT_VERSION,
        "name": fsm.name,
        "states": list(fsm.states),
        "initial": fsm.initial,
        "inputs": list(fsm.inputs),
        "outputs": list(fsm.outputs),
        "initial_starts": sorted(fsm.initial_starts),
        "transitions": [
            {
                "source": t.source,
                "target": t.target,
                "guard": [[name, value] for name, value in t.guard],
                "outputs": sorted(t.outputs),
                "starts": sorted(t.starts),
                "completes": sorted(t.completes),
                "queries": t.queries,
            }
            for t in fsm.transitions
        ],
    }


def fsm_from_dict(data: Mapping[str, Any]) -> FSM:
    """Rebuild an FSM from :func:`fsm_to_dict` data (and validate it)."""
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported FSM format {data.get('format')!r}"
        )
    transitions = tuple(
        Transition(
            source=t["source"],
            target=t["target"],
            guard=tuple((name, bool(value)) for name, value in t["guard"]),
            outputs=frozenset(t["outputs"]),
            starts=frozenset(t["starts"]),
            completes=frozenset(t["completes"]),
            queries=t.get("queries"),
        )
        for t in data["transitions"]
    )
    fsm = FSM(
        name=data["name"],
        states=tuple(data["states"]),
        initial=data["initial"],
        inputs=tuple(data["inputs"]),
        outputs=tuple(data["outputs"]),
        transitions=transitions,
        initial_starts=frozenset(data.get("initial_starts", ())),
    )
    fsm.validate()
    return fsm


# ----------------------------------------------------------------------
# Pipeline artifacts
#
# Every intermediate of the synthesis pipeline serializes to plain JSON
# data and round-trips exactly.  The ``*_from_dict`` functions take the
# upstream artifacts they reference (graph, allocation, order) as
# explicit context instead of embedding copies, which is what lets the
# per-pass artifact cache (:mod:`repro.pipeline`) rebuild any pass
# output from its payload plus the artifacts already in the store.
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: "TimeStepSchedule") -> dict[str, Any]:
    """Serialize a time-step schedule (start times only)."""
    return {
        "format": FORMAT_VERSION,
        "start": {name: int(t) for name, t in schedule.start.items()},
    }


def schedule_from_dict(
    data: Mapping[str, Any], dfg: DataflowGraph
) -> "TimeStepSchedule":
    """Rebuild a time-step schedule over an existing graph."""
    from .scheduling.schedule import TimeStepSchedule

    _check_format(data, "schedule")
    return TimeStepSchedule(
        dfg=dfg,
        start={name: int(t) for name, t in data["start"].items()},
    )


def order_to_dict(order: "OrderSchedule") -> dict[str, Any]:
    """Serialize an order-based schedule (chains + schedule arcs)."""
    return {
        "format": FORMAT_VERSION,
        "chains": [
            [rc.value, [list(chain) for chain in chains]]
            for rc, chains in order.chains.items()
        ],
        "schedule_arcs": [list(arc) for arc in order.schedule_arcs],
    }


def order_from_dict(
    data: Mapping[str, Any], dfg: DataflowGraph
) -> "OrderSchedule":
    """Rebuild an order-based schedule over an existing graph."""
    from .scheduling.schedule import OrderSchedule

    _check_format(data, "order schedule")
    chains = {
        ResourceClass(rc_value): tuple(
            tuple(chain) for chain in rc_chains
        )
        for rc_value, rc_chains in data["chains"]
    }
    arcs = tuple((u, v) for u, v in data["schedule_arcs"])
    return OrderSchedule(dfg=dfg, chains=chains, schedule_arcs=arcs)


def bound_to_dict(bound: "BoundDataflowGraph") -> dict[str, Any]:
    """Serialize a bound graph (its order plus the unit binding)."""
    return {
        "format": FORMAT_VERSION,
        "order": order_to_dict(bound.order),
        "binding": dict(bound.binding),
    }


def bound_from_dict(
    data: Mapping[str, Any],
    dfg: DataflowGraph,
    allocation: "ResourceAllocation",
) -> "BoundDataflowGraph":
    """Rebuild a bound graph over an existing graph and allocation."""
    from .binding.binder import BoundDataflowGraph

    _check_format(data, "bound graph")
    return BoundDataflowGraph(
        dfg=dfg,
        allocation=allocation,
        order=order_from_dict(data["order"], dfg),
        binding={str(op): str(unit) for op, unit in data["binding"].items()},
    )


def taubm_to_dict(taubm: "TaubmSchedule") -> dict[str, Any]:
    """Serialize a TAUBM schedule (base start times + annotated steps)."""
    return {
        "format": FORMAT_VERSION,
        "base": schedule_to_dict(taubm.base),
        "steps": [
            {
                "index": step.index,
                "ops": list(step.ops),
                "tau_ops": list(step.tau_ops),
            }
            for step in taubm.steps
        ],
    }


def taubm_from_dict(
    data: Mapping[str, Any], dfg: DataflowGraph
) -> "TaubmSchedule":
    """Rebuild a TAUBM schedule over an existing graph."""
    from .scheduling.schedule import TaubmSchedule, TaubmStep

    _check_format(data, "TAUBM schedule")
    steps = tuple(
        TaubmStep(
            index=int(step["index"]),
            ops=tuple(step["ops"]),
            tau_ops=tuple(step["tau_ops"]),
        )
        for step in data["steps"]
    )
    return TaubmSchedule(
        base=schedule_from_dict(data["base"], dfg), steps=steps
    )


def distributed_to_dict(
    unit: "DistributedControlUnit",
) -> dict[str, Any]:
    """Serialize a distributed control unit (controllers, nets, pruning).

    Controller and net order is preserved as explicit lists so the
    rebuilt unit iterates — and therefore describes and fingerprints —
    identically to the original.
    """
    return {
        "format": FORMAT_VERSION,
        "controllers": [
            [name, fsm_to_dict(fsm)]
            for name, fsm in unit.controllers.items()
        ],
        "nets": [
            {
                "producer_op": net.producer_op,
                "producer_unit": net.producer_unit,
                "consumer_units": list(net.consumer_units),
            }
            for net in unit.nets
        ],
        "pruned_signals": list(unit.pruned_signals),
    }


def distributed_from_dict(
    data: Mapping[str, Any], bound: "BoundDataflowGraph"
) -> "DistributedControlUnit":
    """Rebuild a distributed control unit over an existing bound graph."""
    from .control.distributed import DistributedControlUnit
    from .control.netlist import CompletionNet

    _check_format(data, "distributed control unit")
    return DistributedControlUnit(
        bound=bound,
        controllers={
            name: fsm_from_dict(fsm_data)
            for name, fsm_data in data["controllers"]
        },
        nets=tuple(
            CompletionNet(
                producer_op=net["producer_op"],
                producer_unit=net["producer_unit"],
                consumer_units=tuple(net["consumer_units"]),
            )
            for net in data["nets"]
        ),
        pruned_signals=tuple(data["pruned_signals"]),
    )


def _check_format(data: Mapping[str, Any], what: str) -> None:
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported {what} format {data.get('format')!r}"
        )


# ----------------------------------------------------------------------
# Completion specs
# ----------------------------------------------------------------------
def completion_spec_to_dict(spec) -> dict[str, Any]:
    """Serialize a :class:`~repro.resources.spec.CompletionSpec`."""
    data: dict[str, Any] = {"format": FORMAT_VERSION}
    data.update(spec.to_dict())
    return data


def completion_spec_from_dict(data: Mapping[str, Any]):
    """Rebuild a spec written by :func:`completion_spec_to_dict`."""
    from .resources.spec import spec_from_dict

    _check_format(data, "completion spec")
    return spec_from_dict(
        {key: value for key, value in data.items() if key != "format"}
    )


# ----------------------------------------------------------------------
# Whole designs
# ----------------------------------------------------------------------
def design_to_dict(result) -> dict[str, Any]:
    """Serialize a :class:`~repro.api.SynthesisResult`'s design record.

    Captures everything needed to audit or diff a synthesis run: graph,
    allocation, schedule, chains, schedule arcs, binding and the pruned
    per-unit controller FSMs.
    """
    allocation = result.allocation
    return {
        "format": FORMAT_VERSION,
        "dfg": dfg_to_dict(result.dfg),
        "allocation": [
            {
                "name": u.name,
                "class": u.resource_class.value,
                "telescopic": u.is_telescopic,
                "level_delays_ns": list(u.level_delays_ns),
            }
            for u in allocation
        ],
        "clock_ns": allocation.clock_period_ns(),
        "schedule": dict(result.schedule.start),
        "schedule_arcs": [list(arc) for arc in result.order.schedule_arcs],
        "chains": {
            rc.value: [list(chain) for chain in chains]
            for rc, chains in result.order.chains.items()
        },
        "binding": dict(result.bound.binding),
        "controllers": {
            unit: fsm_to_dict(fsm)
            for unit, fsm in result.distributed.controllers.items()
        },
        "pruned_signals": list(result.distributed.pruned_signals),
    }


def dumps(data: Mapping[str, Any], indent: int = 2) -> str:
    """JSON text for any of the dictionaries above."""
    return json.dumps(data, indent=indent, sort_keys=True)


def loads(text: str) -> dict[str, Any]:
    """Parse JSON text produced by :func:`dumps`."""
    return json.loads(text)
