"""JSON (de)serialization of dataflow graphs, FSMs and whole designs.

Lets synthesized artifacts leave the Python process — for version control
of golden controllers, for diffing two synthesis runs, or for feeding
external tools.  Round-trips are exact: ``fsm_from_dict(fsm_to_dict(f))``
reproduces the machine bit-for-bit (tests enforce it).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .core.dfg import ConstRef, DataflowGraph, InputRef, OpRef, Operand
from .core.ops import OpType
from .errors import ReproError
from .fsm.model import FSM, Transition

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Dataflow graphs
# ----------------------------------------------------------------------
def _operand_to_dict(operand: Operand) -> dict[str, Any]:
    if isinstance(operand, InputRef):
        return {"kind": "input", "name": operand.name}
    if isinstance(operand, ConstRef):
        return {"kind": "const", "value": operand.value}
    assert isinstance(operand, OpRef)
    return {"kind": "op", "name": operand.op}


def _operand_from_dict(data: Mapping[str, Any]) -> Operand:
    kind = data.get("kind")
    if kind == "input":
        return InputRef(data["name"])
    if kind == "const":
        return ConstRef(int(data["value"]))
    if kind == "op":
        return OpRef(data["name"])
    raise ReproError(f"unknown operand kind {kind!r}")


def dfg_to_dict(dfg: DataflowGraph) -> dict[str, Any]:
    """Serialize a dataflow graph to plain JSON-compatible data."""
    return {
        "format": FORMAT_VERSION,
        "name": dfg.name,
        "inputs": list(dfg.inputs),
        "operations": [
            {
                "name": op.name,
                "type": op.op_type.name,
                "operands": [_operand_to_dict(o) for o in op.operands],
            }
            for op in dfg
        ],
        "outputs": dict(dfg.outputs),
    }


def dfg_from_dict(data: Mapping[str, Any]) -> DataflowGraph:
    """Rebuild a dataflow graph from :func:`dfg_to_dict` data."""
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported DFG format {data.get('format')!r}"
        )
    dfg = DataflowGraph(data["name"])
    for name in data["inputs"]:
        dfg.add_input(name)
    for record in data["operations"]:
        try:
            op_type = OpType[record["type"]]
        except KeyError:
            raise ReproError(
                f"unknown operation type {record['type']!r}"
            ) from None
        operands = [_operand_from_dict(o) for o in record["operands"]]
        dfg.add_op(record["name"], op_type, *operands)
    for out_name, op_name in data["outputs"].items():
        dfg.set_output(out_name, op_name)
    return dfg


# ----------------------------------------------------------------------
# FSMs
# ----------------------------------------------------------------------
def fsm_to_dict(fsm: FSM) -> dict[str, Any]:
    """Serialize an FSM to plain JSON-compatible data."""
    return {
        "format": FORMAT_VERSION,
        "name": fsm.name,
        "states": list(fsm.states),
        "initial": fsm.initial,
        "inputs": list(fsm.inputs),
        "outputs": list(fsm.outputs),
        "initial_starts": sorted(fsm.initial_starts),
        "transitions": [
            {
                "source": t.source,
                "target": t.target,
                "guard": [[name, value] for name, value in t.guard],
                "outputs": sorted(t.outputs),
                "starts": sorted(t.starts),
                "completes": sorted(t.completes),
                "queries": t.queries,
            }
            for t in fsm.transitions
        ],
    }


def fsm_from_dict(data: Mapping[str, Any]) -> FSM:
    """Rebuild an FSM from :func:`fsm_to_dict` data (and validate it)."""
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported FSM format {data.get('format')!r}"
        )
    transitions = tuple(
        Transition(
            source=t["source"],
            target=t["target"],
            guard=tuple((name, bool(value)) for name, value in t["guard"]),
            outputs=frozenset(t["outputs"]),
            starts=frozenset(t["starts"]),
            completes=frozenset(t["completes"]),
            queries=t.get("queries"),
        )
        for t in data["transitions"]
    )
    fsm = FSM(
        name=data["name"],
        states=tuple(data["states"]),
        initial=data["initial"],
        inputs=tuple(data["inputs"]),
        outputs=tuple(data["outputs"]),
        transitions=transitions,
        initial_starts=frozenset(data.get("initial_starts", ())),
    )
    fsm.validate()
    return fsm


# ----------------------------------------------------------------------
# Whole designs
# ----------------------------------------------------------------------
def design_to_dict(result) -> dict[str, Any]:
    """Serialize a :class:`~repro.api.SynthesisResult`'s design record.

    Captures everything needed to audit or diff a synthesis run: graph,
    allocation, schedule, chains, schedule arcs, binding and the pruned
    per-unit controller FSMs.
    """
    allocation = result.allocation
    return {
        "format": FORMAT_VERSION,
        "dfg": dfg_to_dict(result.dfg),
        "allocation": [
            {
                "name": u.name,
                "class": u.resource_class.value,
                "telescopic": u.is_telescopic,
                "level_delays_ns": list(u.level_delays_ns),
            }
            for u in allocation
        ],
        "clock_ns": allocation.clock_period_ns(),
        "schedule": dict(result.schedule.start),
        "schedule_arcs": [list(arc) for arc in result.order.schedule_arcs],
        "chains": {
            rc.value: [list(chain) for chain in chains]
            for rc, chains in result.order.chains.items()
        },
        "binding": dict(result.bound.binding),
        "controllers": {
            unit: fsm_to_dict(fsm)
            for unit, fsm in result.distributed.controllers.items()
        },
        "pruned_signals": list(result.distributed.pruned_signals),
    }


def dumps(data: Mapping[str, Any], indent: int = 2) -> str:
    """JSON text for any of the dictionaries above."""
    return json.dumps(data, indent=indent, sort_keys=True)


def loads(text: str) -> dict[str, Any]:
    """Parse JSON text produced by :func:`dumps`."""
    return json.loads(text)
