"""Arithmetic-unit substrate: units, allocations, completion models."""

from .allocation import (
    PAPER_FIXED_DELAY_NS,
    PAPER_LONG_DELAY_NS,
    PAPER_SHORT_DELAY_NS,
    ResourceAllocation,
)
from .bitlevel import ArrayMultiplier, RippleCarryAdder, carry_chain_length
from .completion import (
    AllFastCompletion,
    CategoricalCompletion,
    LevelAssignmentCompletion,
    AllSlowCompletion,
    AssignmentCompletion,
    BernoulliCompletion,
    CompletionModel,
    OperandCompletion,
    TraceCompletion,
    expected_fast_probability,
)
from .csg import (
    AdderCSG,
    MultiplierCSG,
    OperandDistribution,
    measure_fast_fraction,
    small_value_distribution,
    sparse_distribution,
    synthesize_adder_csg,
    synthesize_multiplier_csg,
    uniform_distribution,
    verify_csg_safety,
)
from .gates import Netlist, bus, bus_values, read_bus
from .units import (
    ArithmeticUnit,
    FixedDelayUnit,
    MultiLevelTelescopicUnit,
    TelescopicUnit,
    make_unit,
)

__all__ = [
    "AdderCSG",
    "AllFastCompletion",
    "AllSlowCompletion",
    "ArithmeticUnit",
    "ArrayMultiplier",
    "AssignmentCompletion",
    "BernoulliCompletion",
    "CategoricalCompletion",
    "CompletionModel",
    "FixedDelayUnit",
    "LevelAssignmentCompletion",
    "MultiLevelTelescopicUnit",
    "MultiplierCSG",
    "Netlist",
    "OperandCompletion",
    "OperandDistribution",
    "PAPER_FIXED_DELAY_NS",
    "PAPER_LONG_DELAY_NS",
    "PAPER_SHORT_DELAY_NS",
    "ResourceAllocation",
    "RippleCarryAdder",
    "TelescopicUnit",
    "TraceCompletion",
    "bus",
    "bus_values",
    "carry_chain_length",
    "expected_fast_probability",
    "make_unit",
    "measure_fast_fraction",
    "small_value_distribution",
    "sparse_distribution",
    "synthesize_adder_csg",
    "synthesize_multiplier_csg",
    "uniform_distribution",
    "verify_csg_safety",
]
