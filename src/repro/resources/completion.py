"""Completion-signal models for telescopic units.

A completion model answers one question per executed operation: *did this
operand pair belong to the fast group* (completion signal ``C = 1`` within
the short delay)?  The paper evaluates everything in terms of the fast-group
probability ``P``; this module provides that Bernoulli abstraction plus
deterministic, trace-driven and operand-driven (bit-level) models that all
plug into the same simulator.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from ..errors import SimulationError
from .units import ArithmeticUnit, TelescopicUnit


class CompletionModel(abc.ABC):
    """Decides, per operation execution, whether the TAU finishes fast."""

    @abc.abstractmethod
    def is_fast(
        self,
        op_name: str,
        unit: ArithmeticUnit,
        operands: "tuple[int, ...] | None",
        rng: random.Random,
    ) -> bool:
        """Return ``True`` when the completion signal fires within SD.

        ``operands`` carries the concrete operand values when the caller
        runs a value-computing datapath; purely stochastic models ignore
        it.  Fixed-delay units never consult the model.
        """

    def sample_level(
        self,
        op_name: str,
        unit: ArithmeticUnit,
        operands: "tuple[int, ...] | None",
        rng: random.Random,
    ) -> int:
        """Telescope level of one execution (0 = fastest).

        The default maps the binary fast/slow answer onto the first/last
        level — exact for the paper's two-level TAUs; multi-level models
        override this.
        """
        if self.is_fast(op_name, unit, operands, rng):
            return 0
        return unit.num_levels - 1

    def reset(self) -> None:
        """Reset any per-run state (trace cursors, ...)."""


@dataclass
class DelegatingCompletion(CompletionModel):
    """Base for models that wrap and selectively override another model.

    Forwards ``is_fast``/``sample_level``/``reset`` to ``inner`` verbatim;
    subclasses override only the behaviour they change.  This is the hook
    the fault-injection layer (:mod:`repro.faults`) uses to perturb
    completion behaviour without re-implementing the wrapped model.
    """

    inner: CompletionModel

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        return self.inner.is_fast(op_name, unit, operands, rng)

    def sample_level(self, op_name, unit, operands, rng) -> int:
        return self.inner.sample_level(op_name, unit, operands, rng)

    def reset(self) -> None:
        self.inner.reset()


@dataclass
class BernoulliCompletion(CompletionModel):
    """Each execution is fast independently with probability ``p``.

    This is the paper's evaluation model: Table 2 sweeps
    ``P ∈ {0.9, 0.7, 0.5}``.
    """

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise SimulationError(f"P must be in [0, 1], got {self.p}")

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        return rng.random() < self.p


def resolve_unit_probability(
    table: Mapping[str, float], unit: ArithmeticUnit
) -> float:
    """Fast probability for ``unit`` from a per-unit table.

    Lookup order: exact unit name (``TM1``), resource-class value
    (``mul``), then the ``*`` default.  Shared by
    :class:`PerUnitCompletion` and the per-unit spec so the scalar,
    batch and exact engines resolve identically.
    """
    for key in (unit.name, unit.resource_class.value, "*"):
        if key in table:
            return table[key]
    raise SimulationError(
        f"no completion probability for unit {unit.name!r} (class "
        f"{unit.resource_class.value!r}); add a '*' default entry"
    )


def markov_transition_probabilities(
    p_fast: float, stickiness: float
) -> tuple[float, float]:
    """``(p_after_fast, p_after_slow)`` of the sticky completion chain.

    One shared expression so the scalar model and the vectorized batch
    engine threshold with bit-identical floats.  The chain's stationary
    fast probability is exactly ``p_fast``.
    """
    return (
        p_fast + stickiness * (1.0 - p_fast),
        (1.0 - stickiness) * p_fast,
    )


@dataclass
class PerUnitCompletion(CompletionModel):
    """Heterogeneous i.i.d. mix: each unit draws with its own ``p``.

    ``probabilities`` maps unit names, resource-class values or the
    ``*`` default to fast probabilities (see
    :func:`resolve_unit_probability`).
    """

    probabilities: Mapping[str, float]

    def __post_init__(self) -> None:
        for key, p in self.probabilities.items():
            if not 0.0 <= p <= 1.0:
                raise SimulationError(
                    f"P[{key}] must be in [0, 1], got {p}"
                )

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        return rng.random() < resolve_unit_probability(
            self.probabilities, unit
        )


@dataclass
class MarkovCompletion(CompletionModel):
    """Temporally correlated completion: a per-unit two-state chain.

    The first execution on a unit is fast with probability ``p_fast``;
    each later execution is fast with the sticky transition
    probabilities of :func:`markov_transition_probabilities`, keyed by
    that unit's previous outcome.  Exactly one ``rng.random()`` draw
    per execution, so the batch engine replays the stream bit for bit.
    """

    p_fast: float
    stickiness: float
    _last: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_fast <= 1.0:
            raise SimulationError(
                f"p_fast must be in [0, 1], got {self.p_fast}"
            )
        if not 0.0 <= self.stickiness < 1.0:
            raise SimulationError(
                f"stickiness must be in [0, 1), got {self.stickiness}"
            )

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        after_fast, after_slow = markov_transition_probabilities(
            self.p_fast, self.stickiness
        )
        last = self._last.get(unit.name)
        if last is None:
            threshold = self.p_fast
        elif last:
            threshold = after_fast
        else:
            threshold = after_slow
        fast = rng.random() < threshold
        self._last[unit.name] = fast
        return fast

    def reset(self) -> None:
        self._last.clear()


@dataclass
class AllFastCompletion(CompletionModel):
    """Best case: every operand pair is in the fast group."""

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        return True


@dataclass
class AllSlowCompletion(CompletionModel):
    """Worst case: every operand pair needs the long delay."""

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        return False


@dataclass
class TraceCompletion(CompletionModel):
    """Replays a fixed per-operation outcome sequence.

    ``trace`` maps an operation name to the sequence of outcomes of its
    successive executions; a missing entry or an exhausted sequence is an
    error (it means the test did not specify the run fully).  Used to pin
    exact scenarios in unit tests and for exhaustive enumeration.
    """

    trace: Mapping[str, Sequence[bool]]
    _cursor: dict[str, int] = field(default_factory=dict, repr=False)

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        if op_name not in self.trace:
            raise SimulationError(f"no completion trace for {op_name!r}")
        index = self._cursor.get(op_name, 0)
        seq = self.trace[op_name]
        if index >= len(seq):
            raise SimulationError(
                f"completion trace for {op_name!r} exhausted after "
                f"{len(seq)} executions"
            )
        self._cursor[op_name] = index + 1
        return bool(seq[index])

    def reset(self) -> None:
        self._cursor.clear()


@dataclass(frozen=True)
class AssignmentCompletion(CompletionModel):
    """A single fast/slow bit per operation (one execution each).

    The analytic latency engine enumerates these assignments exhaustively;
    wrapping one in a completion model lets the cycle-accurate simulator
    replay exactly the same scenario for cross-checking.
    """

    fast: Mapping[str, bool]

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        try:
            return self.fast[op_name]
        except KeyError:
            raise SimulationError(
                f"no fast/slow assignment for {op_name!r}"
            ) from None


@dataclass
class OperandCompletion(CompletionModel):
    """Data-dependent model: ask the unit's bit-level CSG.

    ``csg_by_unit`` maps unit names to completion-signal-generator
    predicates (see :mod:`repro.resources.csg`).  Requires the simulator to
    run with a value-computing datapath so operand values are available.
    """

    csg_by_unit: Mapping[str, "object"]

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        if operands is None:
            raise SimulationError(
                "OperandCompletion needs concrete operand values; run the "
                "simulator with a value-computing datapath"
            )
        try:
            csg = self.csg_by_unit[unit.name]
        except KeyError:
            raise SimulationError(
                f"no completion-signal generator for unit {unit.name!r}"
            ) from None
        return bool(csg.is_fast(*operands))


@dataclass
class CategoricalCompletion(CompletionModel):
    """Independent categorical level outcomes (multi-level VCAUs).

    ``probabilities[i]`` is the chance an execution completes at level
    ``i``; must sum to 1.  ``is_fast`` reports level 0 for binary callers.
    """

    probabilities: Sequence[float]

    def __post_init__(self) -> None:
        if not self.probabilities:
            raise SimulationError("need at least one level probability")
        if any(p < 0 for p in self.probabilities):
            raise SimulationError("level probabilities must be >= 0")
        total = sum(self.probabilities)
        if abs(total - 1.0) > 1e-9:
            raise SimulationError(
                f"level probabilities must sum to 1, got {total}"
            )

    def sample_level(self, op_name, unit, operands, rng) -> int:
        if len(self.probabilities) != unit.num_levels:
            raise SimulationError(
                f"{len(self.probabilities)} level probabilities but unit "
                f"{unit.name!r} has {unit.num_levels} levels"
            )
        draw = rng.random()
        acc = 0.0
        for level, p in enumerate(self.probabilities):
            acc += p
            if draw < acc:
                return level
        return len(self.probabilities) - 1

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        return self.sample_level(op_name, unit, operands, rng) == 0


@dataclass(frozen=True)
class LevelAssignmentCompletion(CompletionModel):
    """A fixed telescope level per operation (exact multi-level scenarios)."""

    levels: Mapping[str, int]

    def sample_level(self, op_name, unit, operands, rng) -> int:
        try:
            level = self.levels[op_name]
        except KeyError:
            raise SimulationError(
                f"no level assignment for {op_name!r}"
            ) from None
        if not 0 <= level < unit.num_levels:
            raise SimulationError(
                f"level {level} out of range for unit {unit.name!r}"
            )
        return level

    def is_fast(self, op_name, unit, operands, rng) -> bool:
        return self.sample_level(op_name, unit, operands, rng) == 0


def expected_fast_probability(
    model: CompletionModel,
    unit: TelescopicUnit,
    samples: int = 10_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of a stochastic model's fast probability."""
    rng = random.Random(seed)
    hits = sum(
        model.is_fast("probe", unit, None, rng) for _ in range(samples)
    )
    return hits / samples
