"""Resource allocations: which arithmetic units a design gets.

A :class:`ResourceAllocation` is the ordered list of unit instances a
schedule/binding may use, plus the derived system clock.  The paper's
standard allocation (Table 2) is two telescopic multipliers with
SD = 15 ns / LD = 20 ns and fixed adders/subtractors with FD = 15 ns,
clocked at the short delay.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from ..core.dfg import DataflowGraph
from ..core.ops import ResourceClass
from ..errors import AllocationError
from .units import (
    ArithmeticUnit,
    FixedDelayUnit,
    MultiLevelTelescopicUnit,
    TelescopicUnit,
)

#: Paper timing constants (Table 2 footnote).
PAPER_SHORT_DELAY_NS = 15.0
PAPER_LONG_DELAY_NS = 20.0
PAPER_FIXED_DELAY_NS = 15.0

_CLASS_PREFIX = {
    ResourceClass.MULTIPLIER: "M",
    ResourceClass.ADDER: "A",
    ResourceClass.SUBTRACTOR: "S",
    ResourceClass.ALU: "U",
}

_SPEC_TOKEN = re.compile(r"^(?P<cls>[a-z]+):(?P<count>\d+)(?P<tau>[tT]?)$")


@dataclass(frozen=True)
class ResourceAllocation:
    """An immutable set of arithmetic-unit instances.

    The derived clock period is the smallest period at which every unit
    finishes something each cycle: the maximum over telescopic short delays
    and fixed delays.  This matches the paper's ``CC_TAU`` clock (based on
    SD) since its fixed units are no slower than SD.
    """

    units: tuple[ArithmeticUnit, ...]

    def __post_init__(self) -> None:
        if not self.units:
            raise AllocationError("allocation contains no units")
        names = [u.name for u in self.units]
        if len(set(names)) != len(names):
            raise AllocationError(f"duplicate unit names in {names}")

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        spec: "dict[ResourceClass, int]",
        telescopic_classes: Iterable[ResourceClass] = (
            ResourceClass.MULTIPLIER,
        ),
        *,
        short_delay_ns: float = PAPER_SHORT_DELAY_NS,
        long_delay_ns: float = PAPER_LONG_DELAY_NS,
        fixed_delay_ns: float = PAPER_FIXED_DELAY_NS,
        level_delays_ns: "tuple[float, ...] | None" = None,
    ) -> "ResourceAllocation":
        """Build an allocation from per-class counts.

        Classes in ``telescopic_classes`` receive telescopic units named
        ``TM1, TM2, ...`` (multipliers) etc.; other classes receive fixed
        units named ``A1, S1, ...``.  ``level_delays_ns`` (three or more
        ascending delays) switches the telescopic classes to multi-level
        VCAUs instead of two-level TAUs.
        """
        telescopic = set(telescopic_classes)
        units: list[ArithmeticUnit] = []
        for rc, count in spec.items():
            if count < 1:
                raise AllocationError(
                    f"allocation for {rc.value} must be >= 1, got {count}"
                )
            prefix = _CLASS_PREFIX[rc]
            for i in range(1, count + 1):
                if rc in telescopic and level_delays_ns is not None:
                    units.append(
                        MultiLevelTelescopicUnit(
                            name=f"T{prefix}{i}",
                            resource_class=rc,
                            delays_ns=tuple(level_delays_ns),
                        )
                    )
                elif rc in telescopic:
                    units.append(
                        TelescopicUnit(
                            name=f"T{prefix}{i}",
                            resource_class=rc,
                            short_delay_ns=short_delay_ns,
                            long_delay_ns=long_delay_ns,
                        )
                    )
                else:
                    units.append(
                        FixedDelayUnit(
                            name=f"{prefix}{i}",
                            resource_class=rc,
                            delay_ns=fixed_delay_ns,
                        )
                    )
        return cls(units=tuple(units))

    @classmethod
    def parse(cls, text: str, **timing) -> "ResourceAllocation":
        """Parse a compact spec string like ``"mul:2T,add:1,sub:1"``.

        A trailing ``T`` marks the class as telescopic.  Timing keyword
        arguments are forwarded to :meth:`build`.
        """
        spec: dict[ResourceClass, int] = {}
        telescopic: list[ResourceClass] = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            match = _SPEC_TOKEN.match(token)
            if not match:
                raise AllocationError(f"bad allocation token {token!r}")
            rc = ResourceClass(match.group("cls"))
            spec[rc] = int(match.group("count"))
            if match.group("tau"):
                telescopic.append(rc)
        return cls.build(spec, telescopic_classes=telescopic, **timing)

    @classmethod
    def paper_default(
        cls, multipliers: int = 2, adders: int = 1, subtractors: int = 0
    ) -> "ResourceAllocation":
        """The paper's Table 2 style allocation (TAU multipliers)."""
        spec = {ResourceClass.MULTIPLIER: multipliers}
        if adders:
            spec[ResourceClass.ADDER] = adders
        if subtractors:
            spec[ResourceClass.SUBTRACTOR] = subtractors
        return cls.build(spec)

    # -- inspection -----------------------------------------------------
    def __iter__(self) -> Iterator[ArithmeticUnit]:
        return iter(self.units)

    def __len__(self) -> int:
        return len(self.units)

    def unit(self, name: str) -> ArithmeticUnit:
        """Look up a unit by name."""
        for u in self.units:
            if u.name == name:
                return u
        raise AllocationError(f"no unit named {name!r}")

    def units_of_class(
        self, resource_class: ResourceClass
    ) -> tuple[ArithmeticUnit, ...]:
        """All units serving one resource class, in declaration order."""
        return tuple(
            u for u in self.units if u.resource_class is resource_class
        )

    def count(self, resource_class: ResourceClass) -> int:
        """Number of units of one resource class."""
        return len(self.units_of_class(resource_class))

    def telescopic_units(self) -> tuple[ArithmeticUnit, ...]:
        """All variable-computation-time units in the allocation."""
        return tuple(u for u in self.units if u.is_telescopic)

    # -- timing ---------------------------------------------------------
    def clock_period_ns(self) -> float:
        """The derived system clock period (paper's ``CC_TAU``).

        The smallest period at which something completes every cycle: the
        maximum over telescopic first-level delays and fixed delays.
        """
        period = 0.0
        for u in self.units:
            if u.is_telescopic:
                period = max(period, u.level_delays_ns[0])
            else:
                period = max(period, u.worst_delay_ns)
        return period

    def original_clock_period_ns(self) -> float:
        """Clock of the conventional design (paper's ``CC``): worst delays."""
        return max(u.worst_delay_ns for u in self.units)

    def cycles_for(self, unit_name: str, fast: bool) -> int:
        """Cycles one operation occupies ``unit_name`` (fast/slow operands).

        The binary view of the paper's Table 2: ``fast`` selects the first
        telescope level, ``slow`` the worst one.
        """
        unit = self.unit(unit_name)
        level = 0 if fast else unit.num_levels - 1
        return self.cycles_for_level(unit_name, level)

    def cycles_for_level(self, unit_name: str, level: int) -> int:
        """Cycles one operation completing at ``level`` occupies a unit."""
        unit = self.unit(unit_name)
        return unit.level_cycles(self.clock_period_ns(), level)

    def max_cycles_for(self, unit_name: str) -> int:
        """Worst-level cycle count of a unit."""
        unit = self.unit(unit_name)
        return self.cycles_for_level(unit_name, unit.num_levels - 1)

    def validate_two_level(self) -> None:
        """Check every TAU fits the paper's two-delay-level model.

        Algorithm 1 generates exactly one extra state per operation
        (``S_i``/``S_i'``), i.e. LD must fit in two clock cycles and SD in
        one.  The library supports deeper telescopes elsewhere; this check
        is for reproducing the paper's exact FSM shapes.
        """
        clock = self.clock_period_ns()
        for u in self.telescopic_units():
            fast = u.level_cycles(clock, 0)
            slow = u.level_cycles(clock, u.num_levels - 1)
            if u.num_levels != 2 or fast != 1 or slow != 2:
                raise AllocationError(
                    f"unit {u.name!r} is not a two-level TAU at clock "
                    f"{clock} ns (levels={u.num_levels}, fast={fast}, "
                    f"slow={slow})"
                )

    def validate_for(self, dfg: DataflowGraph) -> None:
        """Check the allocation covers every resource class of a graph."""
        for rc in dfg.resource_classes():
            if self.count(rc) == 0:
                raise AllocationError(
                    f"graph {dfg.name!r} needs {rc.value} units but the "
                    f"allocation provides none"
                )

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [f"allocation @ clock {self.clock_period_ns():g} ns:"]
        for u in self.units:
            lines.append(f"  {u}")
        return "\n".join(lines)
