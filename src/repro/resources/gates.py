"""A minimal gate-level netlist with event-driven timing simulation.

The telescopic-unit story rests on a physical fact: the settle time of a
combinational arithmetic block depends on the operands (carry chains of
different lengths sensitize paths of different depths).  To reproduce that
fact from first principles — rather than assert it — this module provides a
tiny structural netlist (AND/OR/XOR/NOT/BUF gates with per-gate delays) and
an event-driven simulator that reports *when* each output settles for a
given input transition.

:mod:`repro.resources.bitlevel` builds ripple-carry adders and array
multipliers on top of this and derives the short/long delay split that a
telescopic unit exploits.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

from ..errors import LogicError

_GATE_FUNCS: dict[str, Callable[..., int]] = {
    "AND": lambda *ins: int(all(ins)),
    "OR": lambda *ins: int(any(ins)),
    "XOR": lambda *ins: sum(ins) % 2,
    "NAND": lambda *ins: int(not all(ins)),
    "NOR": lambda *ins: int(not any(ins)),
    "NOT": lambda a: 1 - a,
    "BUF": lambda a: a,
}


@dataclass(frozen=True)
class Gate:
    """A single logic gate: kind, input nets, output net, delay."""

    kind: str
    inputs: tuple[str, ...]
    output: str
    delay_ns: float

    def evaluate(self, values: Mapping[str, int]) -> int:
        """Compute the gate's output from current net values."""
        func = _GATE_FUNCS[self.kind]
        return func(*(values[n] for n in self.inputs))


class Netlist:
    """An acyclic combinational netlist.

    Nets are identified by name.  Primary inputs are declared explicitly;
    every other net must be driven by exactly one gate.  The class offers
    two evaluation modes:

    * :meth:`evaluate` — zero-delay functional evaluation (levelized),
    * :meth:`settle` — event-driven timing simulation of an input
      transition, returning final values and the settle time of the latest
      output change.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: list[Gate] = []
        self._driver: dict[str, Gate] = {}
        self._fanout: dict[str, list[Gate]] = {}

    # -- construction ---------------------------------------------------
    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._inputs or net in self._driver:
            raise LogicError(f"net {net!r} already exists")
        self._inputs.append(net)
        self._fanout.setdefault(net, [])
        return net

    def add_gate(
        self,
        kind: str,
        inputs: Sequence[str],
        output: str,
        delay_ns: float = 1.0,
    ) -> str:
        """Add a gate driving a fresh net; returns the output net name."""
        if kind not in _GATE_FUNCS:
            raise LogicError(f"unknown gate kind {kind!r}")
        if output in self._driver or output in self._inputs:
            raise LogicError(f"net {output!r} already driven")
        for net in inputs:
            if net not in self._fanout:
                raise LogicError(
                    f"gate input net {net!r} does not exist yet (netlist "
                    f"must be built in topological order)"
                )
        gate = Gate(
            kind=kind, inputs=tuple(inputs), output=output, delay_ns=delay_ns
        )
        self._gates.append(gate)
        self._driver[output] = gate
        self._fanout[output] = []
        for net in inputs:
            self._fanout[net].append(gate)
        return output

    def mark_output(self, net: str) -> None:
        """Flag a net as a primary output (used for settle-time tracking)."""
        if net not in self._fanout:
            raise LogicError(f"cannot mark unknown net {net!r} as output")
        self._outputs.append(net)

    # -- inspection -----------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    # -- evaluation -----------------------------------------------------
    def evaluate(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Zero-delay evaluation; returns the value of every net."""
        values = {n: 0 for n in self._fanout}
        for net in self._inputs:
            if net not in inputs:
                raise LogicError(f"missing value for input net {net!r}")
            values[net] = int(bool(inputs[net]))
        # Gates were appended in topological order by construction.
        for gate in self._gates:
            values[gate.output] = gate.evaluate(values)
        return values

    def settle(
        self,
        new_inputs: Mapping[str, int],
        previous_inputs: "Mapping[str, int] | None" = None,
    ) -> tuple[dict[str, int], float]:
        """Event-driven simulation of the transition to ``new_inputs``.

        Starting from the steady state under ``previous_inputs`` (all
        zeros by default), all primary inputs switch at t = 0 and events
        propagate with per-gate delays.  Returns the final net values and
        the time of the last change on any *output* net (0.0 when no
        output changes).

        This models the inertial settling a completion-signal generator
        must bound: a long carry chain manifests as a late output event.
        """
        previous = previous_inputs or {n: 0 for n in self._inputs}
        values = self.evaluate(previous)
        # Transport-delay semantics: compare each re-evaluation against the
        # *last scheduled* value of the driven net, not its current value —
        # otherwise a pending edge whose cause was cancelled at the same
        # timestamp would survive and leave the net stuck.
        scheduled = dict(values)

        queue: list[tuple[float, int, str, int]] = []
        counter = 0
        for net in self._inputs:
            new_val = int(bool(new_inputs[net]))
            if new_val != scheduled[net]:
                heapq.heappush(queue, (0.0, counter, net, new_val))
                scheduled[net] = new_val
                counter += 1

        output_set = set(self._outputs)
        settle_time = 0.0
        while queue:
            time, _, net, value = heapq.heappop(queue)
            if values[net] == value:
                continue  # superseded edge (net already at this value)
            values[net] = value
            if net in output_set:
                settle_time = max(settle_time, time)
            for gate in self._fanout[net]:
                new_out = gate.evaluate(values)
                if new_out != scheduled[gate.output]:
                    heapq.heappush(
                        queue,
                        (time + gate.delay_ns, counter, gate.output, new_out),
                    )
                    scheduled[gate.output] = new_out
                    counter += 1
        return values, settle_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Netlist {self.name!r} gates={self.num_gates} "
            f"io={len(self._inputs)}/{len(self._outputs)}>"
        )


def bus(prefix: str, width: int) -> list[str]:
    """Net names for a bus: ``prefix0 .. prefix{width-1}`` (LSB first)."""
    return [f"{prefix}{i}" for i in range(width)]


def bus_values(prefix: str, width: int, value: int) -> dict[str, int]:
    """Spread an integer onto a bus as individual bit values."""
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


def read_bus(values: Mapping[str, int], prefix: str, width: int) -> int:
    """Collect a bus back into an integer."""
    return sum(values[f"{prefix}{i}"] << i for i in range(width))
