"""Arithmetic unit models.

Two kinds of units exist in the paper's datapaths:

* **Fixed-delay units** — classic synchronous arithmetic logic with one
  worst-case delay (``FD``); they always take one clock cycle.
* **Telescopic arithmetic units (TAUs)** — Fig. 1 of the paper: the same
  arithmetic logic plus a *completion signal generator* (CSG).  Operands in
  the "fast" group settle within the short delay ``SD`` (one clock cycle at
  the SD-based clock); all others need the long delay ``LD`` (a second
  cycle).  The CSG raises ``C = 1`` for fast operands.

The classes here are pure timing/identity models; the data-dependent delay
physics lives in :mod:`repro.resources.bitlevel` and the stochastic
abstraction in :mod:`repro.resources.completion`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.ops import ResourceClass
from ..errors import AllocationError


@dataclass(frozen=True)
class ArithmeticUnit:
    """Base class: a named unit serving one resource class."""

    name: str
    resource_class: ResourceClass

    @property
    def is_telescopic(self) -> bool:
        """Whether this unit has a variable computation time."""
        return False

    @property
    def worst_delay_ns(self) -> float:
        """Worst-case combinational delay of the arithmetic logic."""
        raise NotImplementedError

    @property
    def level_delays_ns(self) -> tuple[float, ...]:
        """Delay of every telescope level, ascending (one level = fixed).

        The paper's TAU is the two-level instance (SD, LD); other
        synchronous VCAUs expose more levels, which Algorithm 1 handles by
        chaining extension states (§6, "other types of VCAUs").
        """
        return (self.worst_delay_ns,)

    @property
    def num_levels(self) -> int:
        """Number of telescope levels."""
        return len(self.level_delays_ns)

    def level_cycles(self, clock_ns: float, level: int) -> int:
        """Clock cycles an operation completing at ``level`` occupies."""
        delay = self.level_delays_ns[level]
        return max(1, math.ceil(delay / clock_ns - 1e-9))

    def completion_signal_name(self) -> str:
        """Name of this unit's completion signal wire (``C_<unit>``)."""
        return f"C_{self.name}"


@dataclass(frozen=True)
class FixedDelayUnit(ArithmeticUnit):
    """A conventional synchronous unit with one fixed delay ``FD``."""

    delay_ns: float = 15.0

    def __post_init__(self) -> None:
        if self.delay_ns <= 0:
            raise AllocationError(
                f"unit {self.name!r}: delay must be positive"
            )

    @property
    def worst_delay_ns(self) -> float:
        return self.delay_ns

    def cycles(self, clock_ns: float) -> int:
        """Number of clock cycles one operation occupies this unit."""
        return max(1, math.ceil(self.delay_ns / clock_ns - 1e-9))

    def __str__(self) -> str:
        return f"{self.name}({self.resource_class.value}, FD={self.delay_ns}ns)"


@dataclass(frozen=True)
class TelescopicUnit(ArithmeticUnit):
    """A telescopic arithmetic unit with short/long delays (paper Fig. 1)."""

    short_delay_ns: float = 15.0
    long_delay_ns: float = 20.0

    def __post_init__(self) -> None:
        if self.short_delay_ns <= 0:
            raise AllocationError(
                f"unit {self.name!r}: short delay must be positive"
            )
        if self.long_delay_ns <= self.short_delay_ns:
            raise AllocationError(
                f"unit {self.name!r}: long delay ({self.long_delay_ns}) must "
                f"exceed short delay ({self.short_delay_ns}); otherwise the "
                f"unit is effectively fixed-delay"
            )

    @property
    def is_telescopic(self) -> bool:
        return True

    @property
    def worst_delay_ns(self) -> float:
        return self.long_delay_ns

    @property
    def level_delays_ns(self) -> tuple[float, ...]:
        return (self.short_delay_ns, self.long_delay_ns)

    def fast_cycles(self, clock_ns: float) -> int:
        """Cycles taken by a fast (``C = 1``) operand pair."""
        return max(1, math.ceil(self.short_delay_ns / clock_ns - 1e-9))

    def slow_cycles(self, clock_ns: float) -> int:
        """Cycles taken by a slow (``C = 0``) operand pair."""
        return max(1, math.ceil(self.long_delay_ns / clock_ns - 1e-9))

    def __str__(self) -> str:
        return (
            f"{self.name}({self.resource_class.value}, "
            f"SD={self.short_delay_ns}ns, LD={self.long_delay_ns}ns)"
        )


@dataclass(frozen=True)
class MultiLevelTelescopicUnit(ArithmeticUnit):
    """A variable-computation-time unit with more than two delay levels.

    The paper's §6 future-work generalization: the completion signal
    generator reports completion after whichever level covers the current
    operands.  Algorithm 1 handles it by chaining one extension state per
    extra clock cycle of the worst level; the synchronized baseline
    extends a time step until every unit reports done.
    """

    delays_ns: tuple[float, ...] = (10.0, 15.0, 20.0)

    def __post_init__(self) -> None:
        if len(self.delays_ns) < 2:
            raise AllocationError(
                f"unit {self.name!r}: a multi-level telescopic unit needs "
                f"at least two levels"
            )
        if any(d <= 0 for d in self.delays_ns):
            raise AllocationError(
                f"unit {self.name!r}: level delays must be positive"
            )
        if list(self.delays_ns) != sorted(self.delays_ns) or len(
            set(self.delays_ns)
        ) != len(self.delays_ns):
            raise AllocationError(
                f"unit {self.name!r}: level delays must be strictly "
                f"ascending, got {self.delays_ns}"
            )

    @property
    def is_telescopic(self) -> bool:
        return True

    @property
    def worst_delay_ns(self) -> float:
        return self.delays_ns[-1]

    @property
    def level_delays_ns(self) -> tuple[float, ...]:
        return self.delays_ns

    def __str__(self) -> str:
        levels = "/".join(f"{d:g}" for d in self.delays_ns)
        return f"{self.name}({self.resource_class.value}, levels={levels}ns)"


def make_unit(
    name: str,
    resource_class: ResourceClass,
    *,
    telescopic: bool,
    short_delay_ns: float = 15.0,
    long_delay_ns: float = 20.0,
    fixed_delay_ns: float = 15.0,
) -> ArithmeticUnit:
    """Factory producing either unit kind from one parameter set."""
    if telescopic:
        return TelescopicUnit(
            name=name,
            resource_class=resource_class,
            short_delay_ns=short_delay_ns,
            long_delay_ns=long_delay_ns,
        )
    return FixedDelayUnit(
        name=name, resource_class=resource_class, delay_ns=fixed_delay_ns
    )
