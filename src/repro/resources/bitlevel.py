"""Bit-level arithmetic datapaths with data-dependent delay.

These are the *physical* substrates behind a telescopic unit (paper Fig. 1):
a ripple-carry adder whose settle time tracks the longest carry chain the
operands actually excite, and a carry-save array multiplier whose settle
time tracks how many partial-product rows carry information.  Both expose

* a functional result (so the value-computing datapath can use them),
* an analytic per-operand delay model (fast to query), and
* a gate-level :class:`~repro.resources.gates.Netlist` realization whose
  event-driven settle time validates the analytic model in tests.

The completion-signal generators in :mod:`repro.resources.csg` are
synthesized against the analytic models and safety-checked exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..errors import LogicError
from .gates import Netlist, bus_values, read_bus


def carry_chain_length(a: int, b: int, width: int) -> int:
    """Length of the longest carry chain excited by adding ``a + b``.

    A carry is *generated* at position i when both bits are 1 and then
    *propagates* through consecutive positions where exactly one bit is 1.
    The returned value is the largest number of stages any single carry
    ripples through — the quantity that determines the adder's settle time
    for this operand pair.
    """
    if a < 0 or b < 0:
        raise LogicError("carry-chain analysis expects unsigned operands")
    longest = 0
    current = 0
    alive = False
    for i in range(width):
        ai = (a >> i) & 1
        bi = (b >> i) & 1
        if ai and bi:  # generate: a new carry is born here
            alive = True
            current = 1
        elif (ai ^ bi) and alive:  # propagate: the carry ripples on
            current += 1
        else:  # kill (0,0) or propagate with no live carry
            alive = False
            current = 0
        longest = max(longest, current)
    return longest


@dataclass(frozen=True)
class RippleCarryAdder:
    """A ``width``-bit ripple-carry adder with data-dependent delay.

    Analytic delay model: a fixed sum/setup term plus one carry-stage term
    per position of the longest excited carry chain.  The gate-level
    netlist (two half-adders + OR per stage, unit gate delay scaled by
    ``gate_delay_ns``) exhibits the same monotone chain-length/settle-time
    relation; tests assert the correlation.
    """

    width: int = 16
    gate_delay_ns: float = 0.6
    base_delay_ns: float = 1.2

    def __post_init__(self) -> None:
        if self.width < 1:
            raise LogicError("adder width must be >= 1")

    def mask(self) -> int:
        return (1 << self.width) - 1

    def result(self, a: int, b: int) -> int:
        """Functional sum, truncated to the adder width."""
        return (a + b) & self.mask()

    def delay_ns(self, a: int, b: int) -> float:
        """Analytic settle time for this operand pair."""
        chain = carry_chain_length(a & self.mask(), b & self.mask(), self.width)
        return self.base_delay_ns + 2.0 * self.gate_delay_ns * chain

    @property
    def worst_delay_ns(self) -> float:
        """Settle time of the longest possible carry chain (= LD)."""
        return self.base_delay_ns + 2.0 * self.gate_delay_ns * self.width

    @cached_property
    def netlist(self) -> Netlist:
        """Gate-level realization (built lazily, cached)."""
        nl = Netlist(f"rca{self.width}")
        for i in range(self.width):
            nl.add_input(f"a{i}")
        for i in range(self.width):
            nl.add_input(f"b{i}")
        carry = None
        d = self.gate_delay_ns
        for i in range(self.width):
            p = nl.add_gate("XOR", [f"a{i}", f"b{i}"], f"p{i}", d)
            g = nl.add_gate("AND", [f"a{i}", f"b{i}"], f"g{i}", d)
            if carry is None:
                nl.add_gate("BUF", [p], f"s{i}", d)
                carry = g
            else:
                nl.add_gate("XOR", [p, carry], f"s{i}", d)
                t = nl.add_gate("AND", [p, carry], f"t{i}", d)
                carry = nl.add_gate("OR", [g, t], f"c{i}", d)
            nl.mark_output(f"s{i}")
        nl.add_gate("BUF", [carry], "cout", d)
        nl.mark_output("cout")
        return nl

    def gate_level_settle_ns(self, a: int, b: int) -> float:
        """Event-driven settle time of the netlist for ``0 → (a, b)``."""
        stimulus = {}
        stimulus.update(bus_values("a", self.width, a & self.mask()))
        stimulus.update(bus_values("b", self.width, b & self.mask()))
        values, settle = self.netlist.settle(stimulus)
        computed = read_bus(values, "s", self.width)
        expected = self.result(a, b)
        if computed != expected:
            raise LogicError(
                f"gate-level adder disagrees with arithmetic: "
                f"{a}+{b} -> {computed}, expected {expected}"
            )
        return settle


@dataclass(frozen=True)
class ArrayMultiplier:
    """A ``width``×``width`` carry-save array multiplier model.

    Analytic delay model: the array is a cascade of partial-product rows;
    rows above the most-significant set bit of the multiplier operand ``b``
    add zeros and settle immediately, so the excited depth is
    ``b.bit_length()`` rows plus the final carry-propagate adder.  This is
    the mechanism Benini et al. exploit: operands with small magnitude (or
    many leading zeros) finish within the short delay.
    """

    width: int = 8
    row_delay_ns: float = 1.5
    base_delay_ns: float = 2.0
    final_adder_stage_ns: float = 0.6

    def __post_init__(self) -> None:
        if self.width < 1:
            raise LogicError("multiplier width must be >= 1")

    def mask(self) -> int:
        return (1 << self.width) - 1

    def result(self, a: int, b: int) -> int:
        """Functional product (full 2×width precision)."""
        return (a & self.mask()) * (b & self.mask())

    def active_rows(self, b: int) -> int:
        """Number of partial-product rows the multiplier operand excites."""
        return (b & self.mask()).bit_length()

    def delay_ns(self, a: int, b: int) -> float:
        """Analytic settle time for this operand pair."""
        a &= self.mask()
        b &= self.mask()
        if a == 0 or b == 0:
            return self.base_delay_ns
        rows = self.active_rows(b)
        # Final carry-propagate addition over the top `width` bits; its
        # chain depends on the actual carry-save residues, approximated by
        # the chain of the two final addends of the schoolbook sum.
        partial = sum((a << i) for i in range(rows - 1) if (b >> i) & 1)
        last = a << (rows - 1)
        chain = carry_chain_length(
            partial & ((1 << (2 * self.width)) - 1),
            last & ((1 << (2 * self.width)) - 1),
            2 * self.width,
        )
        return (
            self.base_delay_ns
            + self.row_delay_ns * rows
            + self.final_adder_stage_ns * chain
        )

    @property
    def worst_delay_ns(self) -> float:
        """Upper bound on :meth:`delay_ns` over all operand pairs (= LD)."""
        return (
            self.base_delay_ns
            + self.row_delay_ns * self.width
            + self.final_adder_stage_ns * 2 * self.width
        )
