"""Completion-signal generator (CSG) synthesis and verification.

A CSG is the distinctive part of a telescopic unit (paper Fig. 1): a small
combinational predicate over the operand bits that raises ``C = 1`` exactly
for operands the arithmetic logic finishes within the short delay SD.  A CSG
must be **safe**: it may pessimistically answer "slow" for a fast pair, but
must never answer "fast" for a pair needing more than SD (that would latch a
wrong result).

This module synthesizes threshold CSGs against the analytic delay models of
:mod:`repro.resources.bitlevel`, verifies safety (exhaustively at small
widths, by construction otherwise), and measures the fast-group probability
``P`` a CSG achieves on a given operand distribution — connecting the
bit-level substrate to the paper's Bernoulli(P) evaluation model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable

from ..errors import LogicError
from .bitlevel import ArrayMultiplier, RippleCarryAdder, carry_chain_length


@dataclass(frozen=True)
class AdderCSG:
    """CSG for a ripple-carry adder: bound the excited carry-chain length.

    The predicate "longest excited carry chain ≤ ``max_chain``" is a pure
    boolean function of the operand bits (realizable as a small AND-OR
    network over generate/propagate terms), hence a legitimate synchronous
    CSG.
    """

    adder: RippleCarryAdder
    max_chain: int

    def is_fast(self, a: int, b: int) -> bool:
        """Completion signal for this operand pair."""
        mask = self.adder.mask()
        return (
            carry_chain_length(a & mask, b & mask, self.adder.width)
            <= self.max_chain
        )

    @property
    def short_delay_ns(self) -> float:
        """The SD this CSG guarantees (delay of a max_chain pair)."""
        return (
            self.adder.base_delay_ns
            + 2.0 * self.adder.gate_delay_ns * self.max_chain
        )


@dataclass(frozen=True)
class MultiplierCSG:
    """CSG for an array multiplier: bound the excited row depth.

    ``is_fast`` is true when the multiplier operand uses at most
    ``max_rows`` partial-product rows (its high bits are zero) *and* the
    final carry-propagate chain is short; detecting leading zeros is a
    trivial NOR over the top bits, the chain bound reuses the adder-CSG
    construction on the final adder.
    """

    multiplier: ArrayMultiplier
    max_rows: int
    max_final_chain: int

    def is_fast(self, a: int, b: int) -> bool:
        """Completion signal for this operand pair."""
        mult = self.multiplier
        a &= mult.mask()
        b &= mult.mask()
        if a == 0 or b == 0:
            return True
        if mult.active_rows(b) > self.max_rows:
            return False
        return mult.delay_ns(a, b) <= self.short_delay_ns + 1e-9

    @property
    def short_delay_ns(self) -> float:
        """The SD this CSG guarantees."""
        mult = self.multiplier
        return (
            mult.base_delay_ns
            + mult.row_delay_ns * self.max_rows
            + mult.final_adder_stage_ns * self.max_final_chain
        )


def synthesize_adder_csg(
    adder: RippleCarryAdder, short_delay_ns: float
) -> AdderCSG:
    """Largest-coverage safe adder CSG for a target short delay."""
    if short_delay_ns < adder.base_delay_ns:
        raise LogicError(
            f"target SD {short_delay_ns} ns is below the adder's base delay "
            f"{adder.base_delay_ns} ns; no operand pair is fast"
        )
    max_chain = int(
        (short_delay_ns - adder.base_delay_ns) / (2.0 * adder.gate_delay_ns)
        + 1e-9
    )
    max_chain = min(max_chain, adder.width)
    return AdderCSG(adder=adder, max_chain=max_chain)


def synthesize_multiplier_csg(
    multiplier: ArrayMultiplier, short_delay_ns: float
) -> MultiplierCSG:
    """Best safe multiplier CSG for a target short delay.

    Searches over (row bound, final-chain bound) pairs whose guaranteed
    delay fits SD and keeps the pair maximizing coverage on uniform
    operands, estimated analytically as rows dominate coverage.
    """
    if short_delay_ns < multiplier.base_delay_ns:
        raise LogicError(
            f"target SD {short_delay_ns} ns is below the multiplier's base "
            f"delay {multiplier.base_delay_ns} ns; no operand pair is fast"
        )
    best: "MultiplierCSG | None" = None
    for rows in range(multiplier.width, 0, -1):
        budget = (
            short_delay_ns
            - multiplier.base_delay_ns
            - multiplier.row_delay_ns * rows
        )
        if budget < 0:
            continue
        chain = min(
            int(budget / multiplier.final_adder_stage_ns + 1e-9),
            2 * multiplier.width,
        )
        candidate = MultiplierCSG(
            multiplier=multiplier, max_rows=rows, max_final_chain=chain
        )
        if best is None or (candidate.max_rows, candidate.max_final_chain) > (
            best.max_rows,
            best.max_final_chain,
        ):
            best = candidate
    if best is None:
        # SD covers the base delay only: zero operands are still fast.
        best = MultiplierCSG(
            multiplier=multiplier, max_rows=0, max_final_chain=0
        )
    return best


def verify_csg_safety(
    csg: "AdderCSG | MultiplierCSG",
    delay_fn: Callable[[int, int], float],
    short_delay_ns: float,
    width: int,
    exhaustive_limit: int = 10,
    samples: int = 20_000,
    seed: int = 0,
) -> int:
    """Check a CSG never claims "fast" for a pair slower than SD.

    Exhaustive over all operand pairs when ``width <= exhaustive_limit``,
    random sampling otherwise.  Returns the number of pairs checked; raises
    :class:`LogicError` on the first violation.
    """
    def check(a: int, b: int) -> None:
        if csg.is_fast(a, b) and delay_fn(a, b) > short_delay_ns + 1e-9:
            raise LogicError(
                f"unsafe CSG: claims fast for ({a}, {b}) but delay is "
                f"{delay_fn(a, b):.3f} ns > SD {short_delay_ns} ns"
            )

    if width <= exhaustive_limit:
        count = 0
        for a in range(1 << width):
            for b in range(1 << width):
                check(a, b)
                count += 1
        return count
    rng = random.Random(seed)
    limit = (1 << width) - 1
    for _ in range(samples):
        check(rng.randint(0, limit), rng.randint(0, limit))
    return samples


@dataclass(frozen=True)
class OperandDistribution:
    """A named generator of operand pairs for coverage measurement."""

    name: str
    sampler: Callable[[random.Random], tuple[int, int]]

    def sample(self, rng: random.Random) -> tuple[int, int]:
        return self.sampler(rng)


def uniform_distribution(width: int) -> OperandDistribution:
    """Operands uniform over the full range — the pessimistic case."""
    limit = (1 << width) - 1
    return OperandDistribution(
        name="uniform",
        sampler=lambda rng: (rng.randint(0, limit), rng.randint(0, limit)),
    )


def small_value_distribution(
    width: int, active_bits: int
) -> OperandDistribution:
    """Operands concentrated in the low ``active_bits`` bits.

    Models audio/DSP data whose samples rarely hit full scale — the regime
    where telescopic units shine (high P).
    """
    limit = (1 << min(active_bits, width)) - 1
    return OperandDistribution(
        name=f"small{active_bits}",
        sampler=lambda rng: (rng.randint(0, limit), rng.randint(0, limit)),
    )


def sparse_distribution(width: int, ones: int) -> OperandDistribution:
    """Operands with at most ``ones`` random set bits (short carry chains)."""

    def sample(rng: random.Random) -> tuple[int, int]:
        def one_value() -> int:
            value = 0
            for _ in range(ones):
                value |= 1 << rng.randrange(width)
            return value

        return one_value(), one_value()

    return OperandDistribution(name=f"sparse{ones}", sampler=sample)


def measure_fast_fraction(
    csg: "AdderCSG | MultiplierCSG",
    distribution: OperandDistribution,
    samples: int = 20_000,
    seed: int = 0,
) -> float:
    """Estimate the fast-group probability P the CSG achieves.

    This is the bridge from the bit-level substrate to the paper's
    evaluation parameter: feed the measured fraction into
    :class:`~repro.resources.completion.BernoulliCompletion` (or use
    :class:`~repro.resources.completion.OperandCompletion` directly).
    """
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        a, b = distribution.sample(rng)
        hits += csg.is_fast(a, b)
    return hits / samples
