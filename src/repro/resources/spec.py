"""First-class completion-model specs: serializable, fingerprintable P.

The paper evaluates everything at a single fast-group probability ``P``,
and historically every layer of this library took a bare ``p: float``.
A :class:`CompletionSpec` replaces that scalar with a declarative,
hashable description of the completion signal that every engine — the
scalar simulator, the vectorized batch engine, the exact analytical
engine, fault campaigns, the bench harness and the CLIs — consumes
through one contract:

* ``bernoulli(p)`` — the paper's i.i.d. model.  Byte-identical to the
  legacy scalar-``p`` path everywhere: same simulated cycles, same
  cache keys (:meth:`CompletionSpec.key_fragment` renders the exact
  legacy ``p={p!r}`` journal fragment), same ``BENCH_core.json``
  values.
* ``per-unit({class_or_unit: p})`` — heterogeneous SD/LD mixes: each
  telescopic unit draws with its own probability, keyed by unit name
  (``TM1``), resource class (``mul``) or the ``*`` default.
* ``markov(p_fast, stickiness)`` — temporally correlated signals: each
  unit's successive executions form a two-state Markov chain whose
  stationary fast probability is exactly ``p_fast``; ``stickiness``
  interpolates between i.i.d. (``0``) and a frozen first draw
  (``-> 1``).  Exact analysis of correlated specs is refused with a
  structured :class:`~repro.errors.ExactAnalysisError`
  (``reason="correlated"``) instead of silently returning the wrong
  stationary answer.

Specs parse from a compact text grammar (the CLI ``--completion``
flag)::

    bernoulli:0.7
    per-unit:mul=0.9,add=0.5,*=0.7
    markov:0.7,0.5

and round-trip through :meth:`CompletionSpec.to_dict` /
:func:`spec_from_dict` for serialization.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from collections.abc import Mapping
from typing import TYPE_CHECKING

from ..errors import ExactAnalysisError, SimulationError
from .completion import (
    BernoulliCompletion,
    CompletionModel,
    MarkovCompletion,
    PerUnitCompletion,
    resolve_unit_probability,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..binding.binder import BoundDataflowGraph
    from .units import ArithmeticUnit


def _check_probability(p: float, what: str = "P") -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"{what} must be in [0, 1], got {p}")
    return p


class CompletionSpec:
    """Base of the declarative completion-model descriptions.

    Concrete specs are frozen dataclasses — hashable, picklable (safe
    to ship to process pools and fabric nodes) and equality-comparable
    by value.
    """

    #: grammar tag (``bernoulli`` / ``per-unit`` / ``markov``)
    kind: str = ""

    #: whether successive draws are statistically dependent — correlated
    #: specs have no per-execution marginal the exact engine could use
    correlated: bool = False

    # -- engine contract -------------------------------------------------
    def model(self) -> CompletionModel:
        """A fresh :class:`CompletionModel` realizing this spec."""
        raise NotImplementedError

    def probability_for(self, unit: "ArithmeticUnit") -> float:
        """Marginal fast probability of one execution on ``unit``.

        Only defined for i.i.d. specs; correlated specs raise a
        structured :class:`~repro.errors.ExactAnalysisError` so exact
        engines refuse rather than silently answer with the stationary
        distribution.
        """
        raise NotImplementedError

    def op_probabilities(
        self, bound: "BoundDataflowGraph", ops
    ) -> dict[str, float]:
        """Per-op marginal fast probabilities for the exact engines."""
        return {
            op: self.probability_for(bound.unit_of(op)) for op in ops
        }

    # -- identity --------------------------------------------------------
    def encode(self) -> str:
        """The canonical ``kind:args`` text form (CLI grammar)."""
        raise NotImplementedError

    def key_fragment(self) -> str:
        """Journal/run-key fragment naming this spec.

        Plain Bernoulli renders the exact legacy ``p={p!r}`` fragment,
        so journals and checkpoints written before specs existed
        resume without a cold start; every other spec renders
        ``completion={encode()}``.
        """
        return f"completion={self.encode()}"

    def to_dict(self) -> dict:
        """JSON-serializable description (see :func:`spec_from_dict`)."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable content digest of the spec."""
        text = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode()).hexdigest()

    def describe(self) -> str:
        """Human-oriented one-liner for report headers."""
        return self.encode()


@dataclass(frozen=True)
class BernoulliSpec(CompletionSpec):
    """i.i.d. Bernoulli(p) — the paper's model, the default everywhere."""

    p: float = 0.7

    kind = "bernoulli"
    correlated = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "p", _check_probability(self.p))

    def model(self) -> CompletionModel:
        return BernoulliCompletion(self.p)

    def probability_for(self, unit) -> float:
        return self.p

    def encode(self) -> str:
        return f"bernoulli:{self.p!r}"

    def key_fragment(self) -> str:
        # the exact legacy fragment: existing journals and caches keyed
        # on a bare float stay warm across the spec refactor
        return f"p={self.p!r}"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "p": self.p}

    def describe(self) -> str:
        return f"P={self.p}"


@dataclass(frozen=True)
class PerUnitSpec(CompletionSpec):
    """Heterogeneous i.i.d. mix: each unit draws with its own ``p``.

    ``probabilities`` maps a unit name (``TM1``), a resource-class value
    (``mul``) or the ``*`` default to a fast probability; lookup tries
    the keys in that order.  Stored as a sorted tuple of pairs so the
    spec is hashable and its encoding canonical.
    """

    probabilities: tuple[tuple[str, float], ...] = ()

    kind = "per-unit"
    correlated = False

    def __init__(
        self, probabilities: "Mapping[str, float] | tuple" = ()
    ) -> None:
        if isinstance(probabilities, Mapping):
            items = probabilities.items()
        else:
            items = tuple(probabilities)
        table = tuple(
            sorted(
                (str(key), _check_probability(value, f"P[{key}]"))
                for key, value in items
            )
        )
        if not table:
            raise SimulationError(
                "per-unit completion spec needs at least one "
                "unit-class probability"
            )
        object.__setattr__(self, "probabilities", table)

    def table(self) -> dict[str, float]:
        return dict(self.probabilities)

    def model(self) -> CompletionModel:
        return PerUnitCompletion(probabilities=self.table())

    def probability_for(self, unit) -> float:
        return resolve_unit_probability(self.table(), unit)

    def encode(self) -> str:
        args = ",".join(
            f"{key}={value!r}" for key, value in self.probabilities
        )
        return f"per-unit:{args}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "probabilities": {k: v for k, v in self.probabilities},
        }


@dataclass(frozen=True)
class MarkovSpec(CompletionSpec):
    """Temporally correlated completion: a per-unit two-state chain.

    Each unit's successive executions form a Markov chain over
    {fast, slow}: the first draw is fast with probability ``p_fast``
    and every later draw is fast with probability

    * ``p_fast + stickiness * (1 - p_fast)`` after a fast execution,
    * ``(1 - stickiness) * p_fast`` after a slow one.

    The stationary fast probability is exactly ``p_fast`` for any
    ``stickiness`` in ``[0, 1)``, so sweeps stay comparable to the
    Bernoulli model; ``stickiness=0`` degenerates to i.i.d. draws (but
    the spec still *declares* correlation, so exact engines refuse it —
    declaring intent, not measuring it, keeps the contract simple).
    """

    p_fast: float = 0.7
    stickiness: float = 0.5

    kind = "markov"
    correlated = True

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "p_fast", _check_probability(self.p_fast, "p_fast")
        )
        stickiness = float(self.stickiness)
        if not 0.0 <= stickiness < 1.0:
            raise SimulationError(
                f"stickiness must be in [0, 1), got {stickiness}"
            )
        object.__setattr__(self, "stickiness", stickiness)

    def model(self) -> CompletionModel:
        return MarkovCompletion(
            p_fast=self.p_fast, stickiness=self.stickiness
        )

    def probability_for(self, unit) -> float:
        raise ExactAnalysisError(
            f"completion spec {self.encode()!r} is temporally "
            f"correlated; exact per-execution marginals do not exist — "
            f"use the Monte-Carlo engines",
            reason="correlated",
        )

    def encode(self) -> str:
        return f"markov:{self.p_fast!r},{self.stickiness!r}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "p_fast": self.p_fast,
            "stickiness": self.stickiness,
        }


# -- parsing and coercion ------------------------------------------------


def _parse_float(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise SimulationError(
            f"{what} must be a number, got {text!r}"
        ) from None


def parse_completion_spec(text: str) -> CompletionSpec:
    """Parse the ``--completion`` grammar into a spec.

    Accepted forms: ``bernoulli:P``, ``per-unit:K=P[,K=P...]`` (``K`` a
    unit name, resource class or ``*``), ``markov:P_FAST,STICKINESS``
    and — as a convenience — a bare float, read as ``bernoulli:P``.
    """
    text = text.strip()
    kind, sep, args = text.partition(":")
    if not sep:
        return BernoulliSpec(p=_parse_float(text, "completion probability"))
    kind = kind.strip().lower()
    args = args.strip()
    if kind == "bernoulli":
        return BernoulliSpec(p=_parse_float(args, "bernoulli probability"))
    if kind in ("per-unit", "per_unit"):
        table: dict[str, float] = {}
        for item in args.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            if not eq:
                raise SimulationError(
                    f"per-unit entries are KEY=P, got {item!r}"
                )
            table[key.strip()] = _parse_float(
                value.strip(), f"per-unit probability for {key.strip()!r}"
            )
        return PerUnitSpec(table)
    if kind == "markov":
        parts = [part.strip() for part in args.split(",") if part.strip()]
        if len(parts) != 2:
            raise SimulationError(
                f"markov spec is markov:P_FAST,STICKINESS, got {text!r}"
            )
        return MarkovSpec(
            p_fast=_parse_float(parts[0], "markov p_fast"),
            stickiness=_parse_float(parts[1], "markov stickiness"),
        )
    raise SimulationError(
        f"unknown completion spec kind {kind!r}; choose bernoulli, "
        f"per-unit or markov"
    )


def as_completion_spec(
    value: "CompletionSpec | float | int | str",
) -> CompletionSpec:
    """Coerce the legacy ``p`` argument surface into a spec.

    Floats (the historical API) become :class:`BernoulliSpec`; strings
    go through :func:`parse_completion_spec`; specs pass through.
    """
    if isinstance(value, CompletionSpec):
        return value
    if isinstance(value, bool):  # bool is an int; reject it explicitly
        raise SimulationError(
            f"cannot interpret {value!r} as a completion spec"
        )
    if isinstance(value, (int, float)):
        return BernoulliSpec(p=float(value))
    if isinstance(value, str):
        return parse_completion_spec(value)
    raise SimulationError(
        f"cannot interpret {value!r} as a completion spec; pass a "
        f"probability, a spec string or a CompletionSpec"
    )


def spec_from_dict(data: Mapping) -> CompletionSpec:
    """Rebuild a spec from :meth:`CompletionSpec.to_dict` output."""
    kind = data.get("kind")
    if kind == "bernoulli":
        return BernoulliSpec(p=float(data["p"]))
    if kind == "per-unit":
        return PerUnitSpec(dict(data["probabilities"]))
    if kind == "markov":
        return MarkovSpec(
            p_fast=float(data["p_fast"]),
            stickiness=float(data["stickiness"]),
        )
    raise SimulationError(f"unknown completion spec kind {kind!r}")


__all__ = [
    "BernoulliSpec",
    "CompletionSpec",
    "MarkovSpec",
    "PerUnitSpec",
    "as_completion_spec",
    "parse_completion_spec",
    "spec_from_dict",
]
