"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A dataflow graph is malformed (cycles, dangling references, ...)."""


class SchedulingError(ReproError):
    """A schedule could not be constructed under the given constraints."""


class BindingError(ReproError):
    """Operations could not be bound to the allocated arithmetic units."""


class AllocationError(ReproError):
    """A resource allocation is inconsistent with the dataflow graph."""


class FSMError(ReproError):
    """A finite state machine is malformed or could not be derived."""


class SimulationError(ReproError):
    """The cycle-accurate simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The control unit stopped making progress before finishing.

    Raised by the simulator's watchdog either when ``max_cycles`` is
    exceeded or when the system is provably quiescent (no unit executing,
    no state or latch changed, work still pending).  Beyond the human
    message it carries machine-readable context so fault campaigns and
    debuggers can name the stuck component directly.
    """

    def __init__(
        self,
        message: str,
        *,
        cycle: int = 0,
        max_cycles: "int | None" = None,
        pending_ops: "tuple[str, ...]" = (),
        executing: "dict[str, str] | None" = None,
        controller_states: "dict[str, str] | None" = None,
        starved_edges: "tuple[tuple[str, str, str], ...]" = (),
    ) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.max_cycles = max_cycles
        self.pending_ops = tuple(pending_ops)
        self.executing = dict(executing or {})
        self.controller_states = dict(controller_states or {})
        self.starved_edges = tuple(starved_edges)

    def context(self) -> "dict[str, object]":
        """JSON-serializable snapshot of the stuck configuration."""
        return {
            "cycle": self.cycle,
            "max_cycles": self.max_cycles,
            "pending_ops": list(self.pending_ops),
            "executing": dict(self.executing),
            "controller_states": dict(self.controller_states),
            "starved_edges": [list(edge) for edge in self.starved_edges],
        }


class ProtocolError(SimulationError):
    """A controller violated the completion-handshake protocol.

    Covers premature starts (token consumed before the producer finished),
    double occupancy of a unit, completion of a non-executing operation,
    completion before the sampled telescope delay elapsed, and — under the
    strict handshake monitor — token overruns on the 1-bit arrival latches.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "protocol",
        cycle: "int | None" = None,
        op: "str | None" = None,
        unit: "str | None" = None,
        edges: "tuple[tuple[str, str, str], ...]" = (),
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.cycle = cycle
        self.op = op
        self.unit = unit
        self.edges = tuple(edges)

    def context(self) -> "dict[str, object]":
        """JSON-serializable description of the violation."""
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "op": self.op,
            "unit": self.unit,
            "edges": [list(e) for e in self.edges],
        }


class ExactAnalysisError(SimulationError):
    """Exact latency analysis exceeded its feasibility bounds.

    Raised by :mod:`repro.analysis.exact_engine` when the correlated
    frontier of the execution graph is wider than ``cut_limit`` (the DP
    state space would explode) or the conditioned state count passes
    ``state_limit`` — and by :func:`~repro.analysis.latency.expected_latency`
    when exact analysis is infeasible and the caller forbade the
    Monte-Carlo fallback with ``allow_monte_carlo=False``.
    """

    def __init__(
        self,
        message: str,
        *,
        cut_width: "int | None" = None,
        limit: "int | None" = None,
        reason: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.cut_width = cut_width
        self.limit = limit
        self.reason = reason

    def context(self) -> "dict[str, object]":
        """JSON-serializable description of the infeasibility."""
        return {
            "cut_width": self.cut_width,
            "limit": self.limit,
            "reason": self.reason,
        }


class ModelCheckBudgetExceeded(SimulationError):
    """Explicit-state model checking exceeded its exploration budget.

    Raised by :mod:`repro.verify.modelcheck` when the reachable state
    count passes ``max_states`` or the BFS frontier passes
    ``max_frontier`` — the structured escape hatch that lets callers
    distinguish "the design is too large for this budget" from "the
    design has a violation".
    """

    def __init__(
        self,
        message: str,
        *,
        states: "int | None" = None,
        frontier: "int | None" = None,
        limit: "int | None" = None,
        reason: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.states = states
        self.frontier = frontier
        self.limit = limit
        self.reason = reason

    def context(self) -> "dict[str, object]":
        """JSON-serializable description of the exhausted budget."""
        return {
            "states": self.states,
            "frontier": self.frontier,
            "limit": self.limit,
            "reason": self.reason,
        }


class VerificationError(SimulationError):
    """End-to-end datapath verification found wrong result values.

    This is the *oracle* failure: the run completed without any runtime
    monitor firing, yet an operation's value disagrees with the reference
    evaluation of the dataflow graph — i.e. silent corruption.
    """

    def __init__(
        self,
        message: str,
        *,
        op: "str | None" = None,
        iteration: "int | None" = None,
        actual: "int | None" = None,
        expected: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.iteration = iteration
        self.actual = actual
        self.expected = expected


class InjectedFaultEscape(SimulationError):
    """A deliberately injected fault produced silent corruption.

    Raised by the fault-campaign runner in strict mode when a faulty run
    finished without any runtime monitor firing but the datapath oracle
    found wrong values — the one outcome a robust control scheme must
    never allow.
    """

    def __init__(
        self,
        message: str,
        *,
        fault: "str | None" = None,
        benchmark: "str | None" = None,
        trial: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.fault = fault
        self.benchmark = benchmark
        self.trial = trial


class LogicError(ReproError):
    """A boolean-logic object (cover, cube, function) is malformed."""


class SupervisionError(ReproError):
    """A supervised work item exhausted its recovery budget.

    Raised by :func:`repro.runtime.supervisor.supervised_map` when an
    item keeps failing after ``max_retries`` attempts under a
    :class:`~repro.runtime.policy.RunPolicy` whose ``on_failure`` is
    ``"retry"`` or ``"raise"``.  Carries the item index and attempt
    count so a campaign log can name the poison trial directly.
    """

    def __init__(
        self,
        message: str,
        *,
        item: "int | None" = None,
        attempts: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.item = item
        self.attempts = attempts


class CheckpointError(ReproError):
    """A checkpoint journal is unusable (unwritable directory, ...)."""


class CheckpointInterrupted(CheckpointError):
    """A run stopped after reaching its new-shard budget.

    The deterministic stand-in for ``kill -9`` in tests and chaos
    drills: a :class:`~repro.runtime.journal.CheckpointJournal` built
    with ``max_new_shards=N`` raises this after persisting ``N`` new
    shards, leaving the journal exactly as a real interruption would.
    """

    def __init__(
        self, message: str, *, shards_written: int = 0
    ) -> None:
        super().__init__(message)
        self.shards_written = shards_written


class FabricError(ReproError):
    """The distributed campaign fabric could not complete a run.

    Raised by the coordinator/worker runtime in
    :mod:`repro.fabric` for unrecoverable conditions: no checkpoint
    journal to replicate into, a worker fleet that cannot be
    sustained, or a coordinator that lost its listening socket.
    Transient conditions (worker death, lease expiry, torn shards)
    are *recovered*, not raised — they appear as
    :class:`~repro.runtime.policy.RecoveryEvent` records instead.
    """


class FabricProtocolError(FabricError):
    """A fabric peer sent a malformed, stale or unauthorized message.

    Covers bad magic/framing, protocol-version mismatches, payload
    checksum failures and wrong session tokens.  The fabric link is a
    trusted transport (pickled payloads!); this error is an integrity
    backstop, not an authentication boundary — never expose the
    coordinator socket to untrusted networks.
    """


class PipelineError(ReproError):
    """A synthesis pipeline is misconfigured or was driven incorrectly."""


class SchedulingFallbackWarning(UserWarning):
    """A scheduler silently degraded to a weaker strategy.

    Emitted (never raised) when the exact branch-and-bound scheduler
    exceeds its search budget and the flow falls back to list scheduling;
    the run manifest records the same event as a structured diagnostic.
    """


class SerialFallbackWarning(UserWarning):
    """A parallel map silently degraded to the serial in-process loop.

    Emitted (never raised) when ``workers > 1`` was requested but the
    function or its payload cannot cross a process boundary (closures,
    lambdas, open handles), so the requested ``-j`` speedup was lost.
    Results are unchanged — only wall-clock time is affected.  The
    deliberate ``workers=1`` path never warns.
    """
