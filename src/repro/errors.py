"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A dataflow graph is malformed (cycles, dangling references, ...)."""


class SchedulingError(ReproError):
    """A schedule could not be constructed under the given constraints."""


class BindingError(ReproError):
    """Operations could not be bound to the allocated arithmetic units."""


class AllocationError(ReproError):
    """A resource allocation is inconsistent with the dataflow graph."""


class FSMError(ReproError):
    """A finite state machine is malformed or could not be derived."""


class SimulationError(ReproError):
    """The cycle-accurate simulation reached an inconsistent state."""


class LogicError(ReproError):
    """A boolean-logic object (cover, cube, function) is malformed."""
