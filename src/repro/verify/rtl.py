"""RTL lint over the generated distributed-control-unit Verilog.

A small structural parser for the subset of Verilog-2001 the backends
emit (module headers with per-line port declarations, scalar
``wire``/``reg`` declarations, ``wire x = expr;`` continuous assigns,
``always @(posedge ...)`` sequential blocks and named-port instances)
feeds four netlist rules: multiple drivers, undriven-but-read nets,
driven-but-unread nets and post-``sanitize_identifier`` identifier
collisions.  The combinational-loop rule (RTL005) combines the parsed
top-level wiring with input→output combinational dependencies derived
from the controller *FSM artifacts* (each Mealy output can depend on
every input its source state's guards reference), so it sees through
the instance boundary without parsing always-block bodies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..fsm.model import FSM
from ..fsm.verilog import fsm_port_map, start_strobe
from .diagnostics import Diagnostic
from .rules import diag
from .target import LintTarget

_MODULE_RE = re.compile(r"^module\s+(\w+)\s*\($")
_PORT_RE = re.compile(r"^\s*(input|output)\s+(?:wire|reg)\s+(\w+),?$")
_DECL_RE = re.compile(r"^\s*(wire|reg)\s+(\w+);$")
_ASSIGN_RE = re.compile(r"^\s*wire\s+(\w+)\s*=\s*(.+);$")
_VECTOR_DECL_RE = re.compile(r"^\s*(?:wire|reg)\s+\[[^\]]+\]\s+(.+);$")
_SEQ_ALWAYS_RE = re.compile(r"^\s*always\s+@\(posedge\b")
_NONBLOCKING_RE = re.compile(r"(\w+)\s*<=\s*(.+?);")
_IF_COND_RE = re.compile(r"if\s*\((.+?)\)")
_INSTANCE_RE = re.compile(r"^\s+(\w+)\s+(\w+)\s+\($")
_CONN_RE = re.compile(r"^\s*\.(\w+)\((.*?)\),?$")
_CONSTANT_RE = re.compile(r"\d+'[bdhoBDHO][0-9a-fA-F_xzXZ]+")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _identifiers(expression: str) -> tuple[str, ...]:
    """Net identifiers read by an expression (constants stripped)."""
    return tuple(_IDENT_RE.findall(_CONSTANT_RE.sub(" ", expression)))


@dataclass
class ParsedInstance:
    """One named-port module instantiation."""

    module: str
    name: str
    connections: list  # of (port, net_expression)


@dataclass
class ParsedModule:
    """Structural view of one emitted module."""

    name: str
    ports: list = field(default_factory=list)  # (name, direction)
    decls: list = field(default_factory=list)  # (name, kind)
    assigns: list = field(default_factory=list)  # (lhs, rhs expression)
    seq_assigns: list = field(default_factory=list)  # (lhs, reads, block)
    instances: list = field(default_factory=list)

    def port_direction(self, port: str) -> "str | None":
        for name, direction in self.ports:
            if name == port:
                return direction
        return None


def parse_verilog(text: str) -> list[ParsedModule]:
    """Parse the emitter's Verilog subset into structural modules."""
    modules: list[ParsedModule] = []
    current: "ParsedModule | None" = None
    instance: "ParsedInstance | None" = None
    in_seq_always = False
    seq_block = -1
    for line in text.splitlines():
        stripped = line.strip()
        header = _MODULE_RE.match(line)
        if header:
            current = ParsedModule(name=header.group(1))
            modules.append(current)
            continue
        if current is None:
            continue
        if stripped == "endmodule":
            current = None
            continue
        port = _PORT_RE.match(line)
        if port and not current.decls and not current.instances:
            current.ports.append((port.group(2), port.group(1)))
            continue
        if in_seq_always:
            for lhs, rhs in _NONBLOCKING_RE.findall(line):
                reads = list(_identifiers(rhs))
                for condition in _IF_COND_RE.findall(line):
                    reads.extend(_identifiers(condition))
                current.seq_assigns.append(
                    (lhs, tuple(reads), seq_block)
                )
            if stripped == "end":
                in_seq_always = False
            continue
        if instance is not None:
            conn = _CONN_RE.match(line)
            if conn:
                instance.connections.append(
                    (conn.group(1), conn.group(2))
                )
            if stripped.startswith(");"):
                instance = None
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            current.assigns.append((assign.group(1), assign.group(2)))
            current.decls.append((assign.group(1), "wire"))
            continue
        decl = _DECL_RE.match(line)
        if decl:
            current.decls.append((decl.group(2), decl.group(1)))
            continue
        vector = _VECTOR_DECL_RE.match(line)
        if vector and not stripped.startswith("localparam"):
            for name in vector.group(1).split(","):
                current.decls.append((name.strip(), "vector"))
            continue
        if _SEQ_ALWAYS_RE.match(line):
            in_seq_always = True
            seq_block += 1
            continue
        inst = _INSTANCE_RE.match(line)
        if inst and inst.group(1) not in ("localparam", "always"):
            instance = ParsedInstance(
                module=inst.group(1), name=inst.group(2), connections=[]
            )
            current.instances.append(instance)
            continue
    return modules


# ---------------------------------------------------------------------
# FSM combinational model
# ---------------------------------------------------------------------
def fsm_comb_dependencies(fsm: FSM) -> tuple[tuple[str, str], ...]:
    """(input port id, output port id) combinational dependence pairs.

    A Mealy output asserted by a transition out of state ``s`` is a
    combinational function of every input some guard of ``s``
    references (the emitted if-chain evaluates them all).  Port ids
    come from :func:`fsm_port_map`, matching the emitted module.
    """
    ports = fsm_port_map(fsm, include_start_strobes=True)
    pairs: set[tuple[str, str]] = set()
    for state in fsm.states:
        referenced = fsm.referenced_inputs(state)
        if not referenced:
            continue
        emitted: set[str] = set()
        for t in fsm.transitions_from(state):
            emitted.update(t.outputs)
            emitted.update(start_strobe(op) for op in t.starts)
        for name in referenced:
            for out in emitted:
                pairs.add((ports[name], ports[out]))
    return tuple(sorted(pairs))


# ---------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------
def check_rtl(target: LintTarget) -> list[Diagnostic]:
    """Run every RTL rule on the design's generated Verilog."""
    anchor = "rtl:control_top"
    try:
        text = target.rtl()
    except Exception as exc:  # noqa: BLE001 - lint must not crash
        return [
            diag(
                "RTL000",
                anchor,
                "generation",
                f"distributed_to_verilog failed: "
                f"{type(exc).__name__}: {exc}",
                "the distributed artifact is internally inconsistent; "
                "earlier rule families name the root cause",
            )
        ]
    modules = parse_verilog(text)
    findings = _check_name_collisions(modules)
    by_name = {m.name: m for m in modules}
    top = modules[-1] if modules else None
    if top is not None:
        findings.extend(_check_top_netlist(top, by_name, anchor))
        findings.extend(
            _check_comb_loops(target, top, by_name, anchor)
        )
    return findings


def _check_name_collisions(
    modules: list[ParsedModule],
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    seen_modules: set[str] = set()
    for module in modules:
        if module.name in seen_modules:
            findings.append(
                diag(
                    "RTL004",
                    f"rtl:{module.name}",
                    f"module {module.name}",
                    f"two modules are both named {module.name!r} after "
                    f"identifier sanitization",
                    "distinct controllers must emit distinct module "
                    "names",
                )
            )
        seen_modules.add(module.name)
        local: set[str] = {"clk", "rst_n"}
        local_anchor = f"rtl:{module.name}"
        for name, _ in module.ports:
            if name in local and name not in ("clk", "rst_n"):
                findings.append(
                    diag(
                        "RTL004",
                        local_anchor,
                        f"port {name}",
                        f"module {module.name!r} declares port "
                        f"{name!r} twice after sanitization",
                        "two source signals alias one Verilog name",
                    )
                )
            local.add(name)
        for name, _ in module.decls:
            if name in local:
                findings.append(
                    diag(
                        "RTL004",
                        local_anchor,
                        f"net {name}",
                        f"module {module.name!r} declares net {name!r} "
                        f"more than once after sanitization",
                        "two source signals alias one Verilog name",
                    )
                )
            local.add(name)
    return findings


def _check_top_netlist(
    top: ParsedModule,
    by_name: dict,
    anchor: str,
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    drivers: dict[str, list[str]] = {}
    reads: dict[str, list[str]] = {}

    def drive(net: str, source: str) -> None:
        drivers.setdefault(net, []).append(source)

    def read(net: str, sink: str) -> None:
        reads.setdefault(net, []).append(sink)

    for name, direction in top.ports:
        if direction == "input":
            drive(name, "top input port")
        else:
            read(name, "top output port")
    for lhs, rhs in top.assigns:
        drive(lhs, f"assign {lhs}")
        for ident in _identifiers(rhs):
            read(ident, f"assign {lhs}")
    # Several branch assignments inside one always block are a single
    # driver; only distinct blocks writing one reg are a conflict.
    seen_blocks: set = set()
    for lhs, rhs_ids, block in top.seq_assigns:
        if (lhs, block) not in seen_blocks:
            seen_blocks.add((lhs, block))
            drive(lhs, f"always {lhs}")
        for ident in rhs_ids:
            if ident != lhs:
                read(ident, f"always {lhs}")
    for instance in top.instances:
        module = by_name.get(instance.module)
        for port, expression in instance.connections:
            direction = (
                module.port_direction(port) if module is not None else None
            )
            nets = _identifiers(expression)
            if direction == "output":
                for net in nets:
                    drive(net, f"{instance.name}.{port}")
            else:
                for net in nets:
                    read(net, f"{instance.name}.{port}")

    known = {name for name, _ in top.ports}
    known.update(name for name, _ in top.decls)
    known.update({"clk", "rst_n"})
    for net in sorted(set(drivers) | set(reads) | known):
        if net in ("clk", "rst_n"):
            continue
        net_drivers = drivers.get(net, [])
        net_reads = reads.get(net, [])
        if len(net_drivers) > 1:
            listing = ", ".join(net_drivers)
            findings.append(
                diag(
                    "RTL001",
                    anchor,
                    f"net {net}",
                    f"net {net} has {len(net_drivers)} drivers "
                    f"({listing})",
                    "every completion/strobe net must have a unique "
                    "producer",
                )
            )
        if net_reads and not net_drivers:
            listing = ", ".join(net_reads)
            findings.append(
                diag(
                    "RTL002",
                    anchor,
                    f"net {net}",
                    f"net {net} is read by {listing} but never driven",
                    "a pruned or missing producer leaves the sink "
                    "floating",
                )
            )
        if net_drivers and not net_reads:
            findings.append(
                diag(
                    "RTL003",
                    anchor,
                    f"net {net}",
                    f"net {net} is driven by {net_drivers[0]} but "
                    f"never read",
                    "dead wiring; prune the producer output",
                )
            )
    return findings


def _check_comb_loops(
    target: LintTarget,
    top: ParsedModule,
    by_name: dict,
    anchor: str,
) -> list[Diagnostic]:
    from ..control.verilog_top import controller_module_names

    fsm_of_module = {
        module: target.controllers[unit_name]
        for unit_name, module in controller_module_names(
            target.distributed
        ).items()
        if unit_name in target.controllers
    }
    edges: set[tuple[str, str]] = set()
    for lhs, rhs in top.assigns:
        for ident in _identifiers(rhs):
            edges.add((ident, lhs))
    for instance in top.instances:
        fsm = fsm_of_module.get(instance.module)
        if fsm is None:
            continue
        net_of_port = {
            port: (_identifiers(expression) or ("",))[0]
            for port, expression in instance.connections
        }
        for in_port, out_port in fsm_comb_dependencies(fsm):
            src = net_of_port.get(in_port)
            dst = net_of_port.get(out_port)
            if src and dst:
                edges.add((src, dst))

    # Tarjan SCC; every SCC with a cycle yields one finding.
    graph: dict[str, list[str]] = {}
    for u, v in sorted(edges):
        graph.setdefault(u, []).append(v)
        graph.setdefault(v, [])
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    findings: list[Diagnostic] = []
    for component in sccs:
        cyclic = len(component) > 1 or (
            component[0],
            component[0],
        ) in edges
        if not cyclic:
            continue
        nets = ", ".join(sorted(component))
        findings.append(
            diag(
                "RTL005",
                anchor,
                f"nets {nets}",
                f"combinational cycle through completion paths: "
                f"{nets}; resolution relies on the arrival-latch "
                f"fixed point settling",
                "register the CC pulse or re-time the handshake if "
                "timing closure fails",
            )
        )
    return findings
