"""The artifact bundle a lint run inspects.

A :class:`LintTarget` gathers the synthesis artifacts of one design —
exactly the objects the pipeline's artifact store holds after the
``distributed`` pass — plus lazily generated RTL.  Builders exist for
every entry point: a :class:`~repro.api.SynthesisResult`, a pipeline
:class:`~repro.pipeline.artifacts.ArtifactStore`, or raw artifacts (the
fault self-tests construct deliberately corrupted bundles).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Mapping
from typing import TYPE_CHECKING

from ..binding.binder import BoundDataflowGraph
from ..control.distributed import DistributedControlUnit
from ..core.dfg import DataflowGraph
from ..fsm.model import FSM
from ..resources.allocation import ResourceAllocation
from ..scheduling.schedule import (
    OrderSchedule,
    TaubmSchedule,
    TimeStepSchedule,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..api import SynthesisResult
    from ..pipeline.artifacts import ArtifactStore


@dataclass(frozen=True)
class LintTarget:
    """Every artifact of one design the static rules inspect."""

    name: str
    dfg: DataflowGraph
    allocation: ResourceAllocation
    schedule: TimeStepSchedule
    order: OrderSchedule
    bound: BoundDataflowGraph
    taubm: TaubmSchedule
    distributed: DistributedControlUnit
    _rtl_cache: "dict[str, str]" = field(
        default_factory=dict, compare=False, repr=False
    )

    @classmethod
    def from_result(
        cls, result: "SynthesisResult", name: "str | None" = None
    ) -> "LintTarget":
        """Bundle a finished :func:`repro.synthesize` result."""
        return cls(
            name=name or result.dfg.name,
            dfg=result.dfg,
            allocation=result.allocation,
            schedule=result.schedule,
            order=result.order,
            bound=result.bound,
            taubm=result.taubm,
            distributed=result.distributed,
        )

    @classmethod
    def from_store(
        cls, store: "ArtifactStore", name: "str | None" = None
    ) -> "LintTarget":
        """Bundle a pipeline artifact store (post-``distributed``)."""
        dfg = store.get("dfg")
        return cls(
            name=name or dfg.name,
            dfg=dfg,
            allocation=store.get("allocation"),
            schedule=store.get("schedule"),
            order=store.get("order"),
            bound=store.get("bound"),
            taubm=store.get("taubm"),
            distributed=store.get("distributed"),
        )

    @property
    def controllers(self) -> Mapping[str, FSM]:
        """The per-unit controller FSMs of the distributed unit."""
        return self.distributed.controllers

    def rtl(self) -> str:
        """The generated distributed-control-unit Verilog (cached)."""
        if "top" not in self._rtl_cache:
            from ..control.verilog_top import distributed_to_verilog

            self._rtl_cache["top"] = distributed_to_verilog(
                self.distributed
            )
        return self._rtl_cache["top"]

    def with_controllers(
        self, controllers: Mapping[str, FSM]
    ) -> "LintTarget":
        """The same design with substituted controller FSMs.

        Used by the optimize-then-lint commutation tests: swapping in
        optimized controllers must not change any verdict.
        """
        return replace(
            self,
            distributed=replace(
                self.distributed, controllers=dict(controllers)
            ),
            _rtl_cache={},
        )
