"""Static verification of synthesis artifacts and generated RTL.

The dynamic checks of :mod:`repro.sim` and :mod:`repro.faults` catch
defects on the stimuli we happen to run; this package proves structural
properties for *all* inputs, without simulating: controller liveness
(the CC-handshake marked graph), FSM guard logic, schedule/binding/
TAUBM consistency and RTL netlist hygiene.  Findings are structured
:class:`Diagnostic` records with byte-stable JSON reports, wired into
the synthesis pipeline (``verify-artifacts`` pass), the CLI
(``repro lint``) and CI (baseline gates).

Phase 2 (:mod:`.modelcheck`) goes beyond per-artifact structure: an
explicit-state reachability engine explores the *composed* controller
network under all realizable completion schedules and proves the
MC-DEAD / MC-RACE / MC-REF families, rendering violations as the same
byte-stable diagnostics plus replayable counterexample stimulus
(``repro check``, the ``model-check`` pipeline pass and the
``baselines/check`` CI gate).
"""

from __future__ import annotations

from .baseline import (
    DEFAULT_BASELINE_DIR,
    DEFAULT_CHECK_BASELINE_DIR,
    GateResult,
    gate_report,
    load_baseline,
    write_baseline,
)
from .diagnostics import (
    SEVERITIES,
    Diagnostic,
    DiagnosticReport,
    severity_rank,
)
from .engine import (
    lint_benchmark,
    lint_result,
    lint_store,
    lint_target,
)
from .fsm_checks import lint_fsm
from .modelcheck import (
    DEFAULT_MAX_FRONTIER,
    DEFAULT_MAX_STATES,
    MCState,
    ModelCheckResult,
    check_benchmark,
    check_result,
    check_store,
    check_target,
)
from .rules import RULES, Rule, rule, rule_table
from .selftest import (
    STRUCTURAL_FAULTS,
    SelftestOutcome,
    StructuralFault,
    covered_fault_kinds,
    injector_fault_kinds,
    run_selftest,
)
from .target import LintTarget

__all__ = [
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_CHECK_BASELINE_DIR",
    "DEFAULT_MAX_FRONTIER",
    "DEFAULT_MAX_STATES",
    "Diagnostic",
    "DiagnosticReport",
    "GateResult",
    "LintTarget",
    "MCState",
    "ModelCheckResult",
    "RULES",
    "Rule",
    "SEVERITIES",
    "STRUCTURAL_FAULTS",
    "SelftestOutcome",
    "StructuralFault",
    "check_benchmark",
    "check_result",
    "check_store",
    "check_target",
    "covered_fault_kinds",
    "gate_report",
    "injector_fault_kinds",
    "lint_benchmark",
    "lint_fsm",
    "lint_result",
    "lint_store",
    "lint_target",
    "load_baseline",
    "rule",
    "rule_table",
    "run_selftest",
    "severity_rank",
    "write_baseline",
]
