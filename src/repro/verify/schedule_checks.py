"""Schedule, binding and TAUBM consistency rules (SCH family).

The constructors of the schedule artifacts validate many of these
properties on the happy path; the static rules re-prove them on
whatever actually reached the store — rehydrated cache entries,
hand-built artifacts, or bundles deliberately corrupted by the fault
self-tests — and they cross-check artifacts *against each other*
(schedule vs. allocation, chains vs. schedule, TAUBM vs. binding),
which no single constructor can.
"""

from __future__ import annotations

from .diagnostics import Diagnostic
from .rules import diag
from .target import LintTarget


def check_schedule(target: LintTarget) -> list[Diagnostic]:
    """Run every SCH rule on a design."""
    findings: list[Diagnostic] = []
    findings.extend(_check_precedence(target))
    findings.extend(_check_step_subscription(target))
    findings.extend(_check_chain_subscription(target))
    findings.extend(_check_unit_slots(target))
    findings.extend(_check_chain_vs_schedule(target))
    findings.extend(_check_taubm(target))
    return findings


def _check_precedence(target: LintTarget) -> list[Diagnostic]:
    start = target.schedule.start
    findings: list[Diagnostic] = []
    for u, v in target.dfg.edges():
        if u not in start or v not in start:
            continue  # missing ops are reported by the step partition
        if start[u] >= start[v]:
            findings.append(
                diag(
                    "SCH001",
                    "schedule",
                    f"edge {u} -> {v}",
                    f"{u!r} (step {start[u]}) must complete strictly "
                    f"before its consumer {v!r} (step {start[v]})",
                    "reschedule the consumer at least one step after "
                    "its producers",
                )
            )
    return findings


def _check_step_subscription(target: LintTarget) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    allocation = target.allocation
    for step_index, ops in enumerate(target.schedule.steps()):
        counts: dict = {}
        for name in ops:
            rc = target.dfg.op(name).resource_class
            counts[rc] = counts.get(rc, 0) + 1
        for rc, used in sorted(counts.items(), key=lambda kv: kv[0].value):
            allocated = len(allocation.units_of_class(rc))
            if used > allocated:
                findings.append(
                    diag(
                        "SCH002",
                        "schedule",
                        f"step T{step_index}",
                        f"step T{step_index} schedules {used} "
                        f"{rc.value} operations but only {allocated} "
                        f"{rc.value} unit(s) are allocated",
                        "spread the step or allocate more units",
                    )
                )
    return findings


def _check_chain_subscription(target: LintTarget) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for rc, chains in sorted(
        target.order.chains.items(), key=lambda kv: kv[0].value
    ):
        used = sum(1 for chain in chains if chain)
        allocated = len(target.allocation.units_of_class(rc))
        if used > allocated:
            findings.append(
                diag(
                    "SCH003",
                    "order",
                    f"class {rc.value}",
                    f"{used} non-empty {rc.value} chains but only "
                    f"{allocated} {rc.value} unit(s) allocated; some "
                    f"chain has no unit to bind to",
                    "merge chains or allocate more units",
                )
            )
    return findings


def _check_unit_slots(target: LintTarget) -> list[Diagnostic]:
    """SCH004: one operation per unit per time step."""
    findings: list[Diagnostic] = []
    start = target.schedule.start
    for unit in target.bound.used_units():
        by_step: dict[int, list[str]] = {}
        for op in target.bound.ops_on_unit(unit.name):
            if op in start:
                by_step.setdefault(start[op], []).append(op)
        for step, ops in sorted(by_step.items()):
            if len(ops) > 1:
                listing = ", ".join(ops)
                findings.append(
                    diag(
                        "SCH004",
                        "binding",
                        f"unit {unit.name}, step T{step}",
                        f"operations {listing} all start on "
                        f"{unit.name} in step T{step}: their RE "
                        f"enables write the unit's result register "
                        f"and drive its operand muxes in the same "
                        f"cycle",
                        "serialize the unit's chain across steps",
                    )
                )
    return findings


def _check_chain_vs_schedule(target: LintTarget) -> list[Diagnostic]:
    """SCH005: chain execution order must agree with the schedule."""
    findings: list[Diagnostic] = []
    start = target.schedule.start
    for _rc, chain in target.order.all_chains():
        for u, v in zip(chain, chain[1:]):
            if u in start and v in start and start[u] > start[v]:
                findings.append(
                    diag(
                        "SCH005",
                        "order",
                        f"chain {' -> '.join(chain)}",
                        f"chain runs {u!r} before {v!r} but the "
                        f"schedule starts {u!r} at T{start[u]} after "
                        f"{v!r} at T{start[v]}; the unit's mux select "
                        f"sequence contradicts the schedule",
                        "reorder the chain to match the time steps",
                    )
                )
    return findings


def _check_taubm(target: LintTarget) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    taubm = target.taubm
    schedule = target.schedule
    bound = target.bound
    scheduled = set(schedule.start)
    seen: set[str] = set()
    for position, step in enumerate(taubm.steps):
        if step.index != position:
            findings.append(
                diag(
                    "SCH006",
                    "taubm",
                    f"step #{position}",
                    f"TAUBM step at position {position} carries index "
                    f"{step.index}; steps must be numbered in order",
                    "rebuild the annotation with derive_taubm_schedule",
                )
            )
        seen.update(step.ops)
        stray = set(step.tau_ops) - set(step.ops)
        if stray:
            listing = ", ".join(sorted(stray))
            findings.append(
                diag(
                    "SCH006",
                    "taubm",
                    f"step T{step.index}",
                    f"TAU operations {listing} are annotated in step "
                    f"T{step.index} but do not execute there",
                    "tau_ops must be a subset of the step's ops",
                )
            )
        for op in step.ops:
            if op not in bound.binding:
                continue
            telescopic = bound.is_telescopic_op(op)
            marked = op in set(step.tau_ops)
            if telescopic and not marked:
                findings.append(
                    diag(
                        "SCH006",
                        "taubm",
                        f"step T{step.index}",
                        f"operation {op!r} runs on telescopic unit "
                        f"{bound.binding[op]!r} but step "
                        f"T{step.index} grants it no conditional "
                        f"extension; a slow completion overruns the "
                        f"step",
                        "mark the operation in the step's tau_ops",
                    )
                )
            elif marked and not telescopic:
                findings.append(
                    diag(
                        "SCH006",
                        "taubm",
                        f"step T{step.index}",
                        f"operation {op!r} is marked TAU in step "
                        f"T{step.index} but runs on fixed-delay unit "
                        f"{bound.binding[op]!r}",
                        "only telescopic-bound operations take "
                        "extensions",
                    )
                )
    missing = scheduled - seen
    if missing:
        listing = ", ".join(sorted(missing))
        findings.append(
            diag(
                "SCH006",
                "taubm",
                "partition",
                f"scheduled operations missing from every TAUBM step: "
                f"{listing}",
                "the steps must partition the schedule",
            )
        )
    return findings
