"""Structured diagnostics for the static verification suite.

A :class:`Diagnostic` is one finding of one rule: rule id, severity,
the artifact it anchors to (``controller:D-FSM-TM1``, ``schedule``,
``rtl:control_top`` ...), a location inside that artifact, a message and
a fix hint.  A :class:`DiagnosticReport` bundles every finding for one
design and renders to byte-stable JSON — sorted keys, sorted
diagnostics, no timestamps — so committed baselines and CI gates can
compare output with ``cmp``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from ..errors import VerificationError

#: severities from most to least severe; order defines the gate ranking.
SEVERITIES: tuple[str, ...] = ("error", "warning", "info")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: schema version of the JSON report format.
REPORT_FORMAT = 1


def severity_rank(severity: str) -> int:
    """Rank of a severity (0 = most severe); rejects unknown names."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise VerificationError(
            f"unknown severity {severity!r}; expected one of "
            f"{', '.join(SEVERITIES)}"
        ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one static-verification rule."""

    rule: str
    severity: str
    artifact: str
    location: str
    message: str
    hint: str = ""

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # reject unknown severities early

    @property
    def sort_key(self) -> tuple:
        """Deterministic report order: severity, rule, then anchor."""
        return (
            severity_rank(self.severity),
            self.rule,
            self.artifact,
            self.location,
            self.message,
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "artifact": self.artifact,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Diagnostic":
        return cls(
            rule=str(payload["rule"]),
            severity=str(payload["severity"]),
            artifact=str(payload["artifact"]),
            location=str(payload["location"]),
            message=str(payload["message"]),
            hint=str(payload.get("hint", "")),
        )

    def render(self) -> str:
        """One-line human-readable form."""
        text = (
            f"{self.severity:<7} {self.rule}  "
            f"{self.artifact} :: {self.location} — {self.message}"
        )
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


@dataclass(frozen=True)
class DiagnosticReport:
    """Every finding for one design, in deterministic order."""

    design: str
    diagnostics: tuple[Diagnostic, ...]

    @classmethod
    def build(
        cls, design: str, diagnostics: Iterable[Diagnostic]
    ) -> "DiagnosticReport":
        """A report with the canonical (deduplicated, sorted) ordering."""
        unique = sorted(set(diagnostics), key=lambda d: d.sort_key)
        return cls(design=design, diagnostics=tuple(unique))

    # -- queries ---------------------------------------------------------
    def count(self, severity: str) -> int:
        severity_rank(severity)
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    def at_least(self, severity: str) -> tuple[Diagnostic, ...]:
        """Diagnostics at or above a severity threshold."""
        threshold = severity_rank(severity)
        return tuple(
            d
            for d in self.diagnostics
            if severity_rank(d.severity) <= threshold
        )

    def rules_fired(self) -> tuple[str, ...]:
        """Sorted distinct rule ids with at least one finding."""
        return tuple(sorted({d.rule for d in self.diagnostics}))

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "design": self.design,
            "summary": {s: self.count(s) for s in SEVERITIES},
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self) -> str:
        """Byte-stable JSON: sorted keys, fixed separators, no times."""
        return json.dumps(
            self.to_dict(), indent=2, sort_keys=True,
            separators=(",", ": "),
        )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DiagnosticReport":
        if payload.get("format") != REPORT_FORMAT:
            raise VerificationError(
                f"unsupported diagnostic report format "
                f"{payload.get('format')!r}"
            )
        return cls.build(
            design=str(payload["design"]),
            diagnostics=[
                Diagnostic.from_dict(d) for d in payload["diagnostics"]
            ],
        )

    @classmethod
    def from_json(cls, text: str) -> "DiagnosticReport":
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        """Multi-line human-readable listing."""
        lines = [
            f"lint {self.design}: "
            + ", ".join(f"{self.count(s)} {s}" for s in SEVERITIES)
        ]
        for d in self.diagnostics:
            lines.append(f"  {d.render()}")
        return "\n".join(lines)
