"""Explicit-state model checking of the composed controller network.

The lint families inspect one artifact at a time; this module explores
the *product* behavior: every per-unit controller FSM stepped together
with the CSG/CC net valuations and the completion-arrival latches, with
the telescopic completion signals treated as free nondeterministic
inputs.  Freedom is expressed at the only point the hardware has any —
the telescope level an operation completes at — so every explored
trajectory is realizable by the cycle-accurate simulator under a
:class:`~repro.resources.completion.LevelAssignmentCompletion`, and
every violation ships with a replayable
:class:`~repro.sim.stimulus.CounterexampleStimulus`.

Three rule families are proved per design:

* **MC-DEAD** — no reachable quiescent-but-incomplete state: from every
  reachable state some completion schedule still finishes the
  iteration (backward co-reachability over the explored graph, which
  also catches livelocks and wedged controllers).
* **MC-RACE** — no reachable cycle where two controllers assert the
  same ``CC`` net, and no completion pulse lands on an already-latched
  unconsumed arrival flag while both endpoints of the edge are still
  pending (first-delivery overrun).
* **MC-REF** — trace refinement against the CENT-SYNC specification:
  the centralized synchronized FSM fires operations in TAUBM step
  order, which linearizes exactly the execution graph (data edges plus
  schedule arcs); a distributed firing sequence is accepted iff it
  respects that partial order, completes each operation exactly when
  its unit's CSG reports done, and never double-books a unit.  The
  lockstep product is implicit: the acceptor's state (the completed-op
  set) is a component of every explored state.

Exploration covers one dataflow iteration: accepting states (all
operations completed once) are not expanded, and wrap-around restarts
of already-completed operations are followed at the fast level without
re-branching — the overlap behavior itself stays visible (latch
traffic, occupancy), while the state space stays bounded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import (
    FSMError,
    ModelCheckBudgetExceeded,
    SimulationError,
)
from ..sim.controllers import ControllerSystem, SystemConfig
from ..sim.stimulus import CounterexampleStimulus
from .diagnostics import Diagnostic, DiagnosticReport
from .rules import diag
from .target import LintTarget

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..api import SynthesisResult
    from ..pipeline.artifacts import ArtifactStore

#: default exploration budgets (states visited / BFS frontier size).
DEFAULT_MAX_STATES = 200_000
DEFAULT_MAX_FRONTIER = 100_000

_HINT = (
    "replay the attached counterexample stimulus in the simulator to "
    "observe the runtime failure"
)


@dataclass(frozen=True)
class MCState:
    """One explored state of the composed network.

    ``executing`` holds one ``(unit, op, left)`` entry per busy unit:
    the operation it runs and the clamped countdown until its CSG
    reports done (``C = left <= 0``).  ``done`` is the set of
    operations that completed at least once — the implicit CENT-SYNC
    acceptor state.
    """

    config: SystemConfig
    executing: tuple[tuple[str, str, int], ...]
    done: frozenset[str]


@dataclass(frozen=True)
class ModelCheckResult:
    """Outcome of model-checking one design."""

    design: str
    states: int
    transitions: int
    accepting: int
    max_depth: int
    report: DiagnosticReport
    counterexamples: tuple[CounterexampleStimulus, ...]

    @property
    def clean(self) -> bool:
        return not self.report.diagnostics

    def counterexample_for(
        self, rule_id: str
    ) -> "CounterexampleStimulus | None":
        """The first (shortest) counterexample of one rule, if any."""
        for cex in self.counterexamples:
            if cex.rule_id == rule_id:
                return cex
        return None

    def render(self) -> str:
        """Human-readable summary plus the diagnostic listing."""
        head = (
            f"check {self.design}: {self.states} states / "
            f"{self.transitions} transitions / {self.accepting} "
            f"accepting / depth {self.max_depth}"
        )
        return head + "\n" + self.report.render()


class _Violation:
    """Internal accumulator entry: diagnostic fields + counterexample."""

    __slots__ = ("diagnostic", "cex")

    def __init__(
        self, diagnostic: Diagnostic, cex: CounterexampleStimulus
    ) -> None:
        self.diagnostic = diagnostic
        self.cex = cex


class _Explorer:
    """BFS over the level-choice-branching network semantics."""

    def __init__(
        self,
        target: LintTarget,
        max_states: int,
        max_frontier: int,
    ) -> None:
        self.target = target
        self.max_states = max_states
        self.max_frontier = max_frontier
        self.system: ControllerSystem = target.distributed.system()
        bound = target.bound
        self.ops = tuple(sorted(self.system.all_ops()))
        op_set = frozenset(self.ops)
        self.all_done = op_set
        # The CENT-SYNC partial order: execution-graph predecessors.
        preds: dict[str, tuple[str, ...]] = {op: () for op in self.ops}
        for u, v in bound.execution_edges():
            if u in op_set and v in op_set:
                preds[v] = preds[v] + (u,)
        self.preds = {
            op: tuple(sorted(set(ps))) for op, ps in preds.items()
        }
        self.unit_of = {
            op: bound.unit_of(op).name for op in self.ops
        }
        self.levels_of = {
            op: (
                tuple(range(bound.unit_of(op).num_levels))
                if bound.unit_of(op).is_telescopic
                else (0,)
            )
            for op in self.ops
        }
        self.left_of = {
            (op, level): max(
                bound.duration_for_level(op, level) - 1, 0
            )
            if bound.unit_of(op).is_telescopic
            else max(bound.duration_cycles(op, fast=True) - 1, 0)
            for op in self.ops
            for level in self.levels_of[op]
        }
        # BFS bookkeeping, indexed by state id (discovery order).
        self.index: dict[MCState, int] = {}
        self.states: list[MCState] = []
        self.parent: list[int] = []
        self.choices: list[tuple[tuple[str, int], ...]] = []
        self.depth: list[int] = []
        self.succs: list[list[int]] = []
        self.accepting: list[bool] = []
        self.wedged: dict[int, str] = {}
        self.transitions = 0
        # First (shortest) violation per (rule, location) key.
        self.found: dict[tuple[str, str], _Violation] = {}

    # -- counterexample assembly ---------------------------------------
    def _levels_to(self, state_id: int) -> tuple[tuple[str, int], ...]:
        """The level assignment realizing the path to a state."""
        levels: dict[str, int] = {}
        node = state_id
        while node >= 0:
            for op, level in self.choices[node]:
                levels.setdefault(op, level)
            node = self.parent[node]
        for op in self.ops:
            if len(self.levels_of[op]) > 1:
                levels.setdefault(op, 0)
        return tuple(sorted(levels.items()))

    def _record(
        self,
        rule_id: str,
        location: str,
        message: str,
        state_id: int,
        expects: str,
    ) -> None:
        key = (rule_id, location)
        if key in self.found:
            return
        d = diag(rule_id, "network", location, message, hint=_HINT)
        cex = CounterexampleStimulus(
            design=self.target.name,
            rule_id=rule_id,
            expects=expects,
            levels=self._levels_to(state_id),
            depth=self.depth[state_id],
            description=message,
            # Deadlock replays run with the default monitors only: the
            # strict handshake monitor could preempt the watchdog with
            # an incidental overrun on the way into the stuck state.
            handshake=expects == "protocol",
        )
        self.found[key] = _Violation(d, cex)

    # -- state admission -------------------------------------------------
    def _admit(
        self,
        state: MCState,
        parent: int,
        choices: tuple[tuple[str, int], ...],
        queue: "deque[int]",
    ) -> int:
        known = self.index.get(state)
        if known is not None:
            return known
        state_id = len(self.states)
        if state_id >= self.max_states:
            raise ModelCheckBudgetExceeded(
                f"model check of {self.target.name!r} exceeded the "
                f"state budget ({self.max_states} states); raise "
                f"--max-states or shrink the design",
                states=state_id,
                limit=self.max_states,
                reason="states",
            )
        self.index[state] = state_id
        self.states.append(state)
        self.parent.append(parent)
        self.choices.append(choices)
        self.depth.append(0 if parent < 0 else self.depth[parent] + 1)
        self.succs.append([])
        is_accepting = state.done >= self.all_done
        self.accepting.append(is_accepting)
        if not is_accepting:
            queue.append(state_id)
            if len(queue) > self.max_frontier:
                raise ModelCheckBudgetExceeded(
                    f"model check of {self.target.name!r} exceeded the "
                    f"frontier budget ({self.max_frontier} states); "
                    f"raise --max-frontier or shrink the design",
                    states=len(self.states),
                    frontier=len(queue),
                    limit=self.max_frontier,
                    reason="frontier",
                )
        return state_id

    # -- one-transition semantics ---------------------------------------
    def _start_ops(
        self,
        state_id: int,
        starts: "tuple[str, ...]",
        executing: dict[str, tuple[str, int]],
        done: frozenset[str],
    ) -> "list[tuple[str, tuple[int, ...]]]":
        """Validate starts against the spec; return the branch points.

        Returns ``(op, candidate levels)`` for every admissible start;
        occupancy violations drop the start (the unit keeps its current
        operation, as the hardware's result register arbitration
        would).
        """
        branch: list[tuple[str, tuple[int, ...]]] = []
        for op in starts:
            unit = self.unit_of[op]
            if unit in executing:
                busy = executing[unit][0]
                self._record(
                    "MC-REF",
                    f"op:{op}",
                    f"unit {unit} double-booked: {op} starts while "
                    f"{busy} is still executing (depth "
                    f"{self.depth[state_id] + 1})",
                    state_id,
                    expects="protocol",
                )
                continue
            if op in done:
                # Wrap-around restart of the next iteration: follow it
                # at the fast level without re-branching.
                branch.append((op, (0,)))
                continue
            missing = tuple(
                p for p in self.preds[op] if p not in done
            )
            if missing:
                self._record(
                    "MC-REF",
                    f"op:{op}",
                    f"{op} starts before execution-graph "
                    f"predecessor(s) {', '.join(missing)} completed "
                    f"(depth {self.depth[state_id] + 1}) — the "
                    f"CENT-SYNC specification refuses this firing "
                    f"sequence",
                    state_id,
                    expects="protocol",
                )
            branch.append((op, self.levels_of[op]))
        return branch

    def _expand(self, state_id: int, queue: "deque[int]") -> None:
        state = self.states[state_id]
        executing = {
            unit: (op, left) for unit, op, left in state.executing
        }
        unit_completions = {
            unit: left <= 0
            for unit, (op, left) in executing.items()
        }
        try:
            emitters = self.system.pulse_emitters(
                state.config, unit_completions
            )
            step = self.system.step(state.config, unit_completions)
        except (FSMError, SimulationError) as exc:
            self.wedged[state_id] = str(exc)
            return
        next_depth = self.depth[state_id] + 1
        # MC-RACE (a): two controllers asserting one CC net.
        for op in sorted(emitters):
            keys = emitters[op]
            if len(keys) > 1:
                self._record(
                    "MC-RACE",
                    f"net:CC_{op}",
                    f"controllers {', '.join(keys)} all assert CC_{op} "
                    f"in one reachable cycle (depth {next_depth})",
                    state_id,
                    expects="protocol",
                )
        # Completions: retire executing entries, feed the acceptor.
        done = set(state.done)
        for op in sorted(step.completes):
            unit = self.unit_of[op]
            record = executing.get(unit)
            if record is None or record[0] != op:
                self._record(
                    "MC-REF",
                    f"op:{op}",
                    f"{op} completes but unit {unit} is not executing "
                    f"it (depth {next_depth})",
                    state_id,
                    expects="protocol",
                )
                continue
            if record[1] > 0:
                self._record(
                    "MC-REF",
                    f"op:{op}",
                    f"{op} completes while unit {unit}'s CSG still "
                    f"reports not-done ({record[1]} cycle(s) left, "
                    f"depth {next_depth}) — the completion signal "
                    f"lied",
                    state_id,
                    expects="protocol",
                )
            del executing[unit]
            done.add(op)
        done_after = frozenset(done)
        # MC-RACE (b): first-delivery token overrun.  Overruns whose
        # producer or consumer already completed are legal wrap-around
        # pipelining artifacts (the simulator merely counts them); a
        # pulse hitting a latched flag while both endpoints are still
        # pending is a genuine double delivery within one iteration.
        for key, consumer, producer in sorted(step.overruns):
            if producer in state.done or consumer in done_after:
                continue
            self._record(
                "MC-RACE",
                f"latch:{key}:{producer}->{consumer}",
                f"completion pulse CC_{producer} lands on the "
                f"already-latched arrival flag of pending consumer "
                f"{consumer} on {key} (depth {next_depth})",
                state_id,
                expects="protocol",
            )
        # Starts: refinement checks, then branch over telescope levels.
        branch = self._start_ops(
            state_id, tuple(sorted(step.starts)), executing, done_after
        )
        survivors = tuple(
            (unit, op, max(left - 1, 0))
            for unit, (op, left) in executing.items()
        )
        combos: list[tuple[tuple[str, int], ...]] = [()]
        for op, levels in branch:
            combos = [
                combo + ((op, level),)
                for combo in combos
                for level in levels
            ]
        for combo in combos:
            entries = list(survivors)
            recorded: list[tuple[str, int]] = []
            for op, level in combo:
                entries.append(
                    (self.unit_of[op], op, self.left_of[(op, level)])
                )
                if len(self.levels_of[op]) > 1 and op not in done_after:
                    recorded.append((op, level))
            successor = MCState(
                config=step.config,
                executing=tuple(sorted(entries)),
                done=done_after,
            )
            child = self._admit(
                successor, state_id, tuple(recorded), queue
            )
            self.succs[state_id].append(child)
            self.transitions += 1

    # -- the run ---------------------------------------------------------
    def run(self) -> None:
        queue: "deque[int]" = deque()
        # Initial states: branch over the levels of the cycle-0 starts.
        initial_starts = tuple(sorted(self.system.initial_starts()))
        config = self.system.initial_config()
        branch = [(op, self.levels_of[op]) for op in initial_starts]
        combos: list[tuple[tuple[str, int], ...]] = [()]
        for op, levels in branch:
            combos = [
                combo + ((op, level),)
                for combo in combos
                for level in levels
            ]
        for combo in combos:
            entries = tuple(
                sorted(
                    (self.unit_of[op], op, self.left_of[(op, level)])
                    for op, level in combo
                )
            )
            recorded = tuple(
                (op, level)
                for op, level in combo
                if len(self.levels_of[op]) > 1
            )
            state = MCState(
                config=config, executing=entries, done=frozenset()
            )
            self._admit(state, -1, recorded, queue)
        for op in initial_starts:
            if self.preds[op]:
                self._record(
                    "MC-REF",
                    f"op:{op}",
                    f"{op} starts at cycle 0 before execution-graph "
                    f"predecessor(s) {', '.join(self.preds[op])} "
                    f"completed",
                    0,
                    expects="protocol",
                )
        while queue:
            self._expand(queue.popleft(), queue)

    # -- MC-DEAD ---------------------------------------------------------
    def find_deadlocks(self) -> None:
        """Backward co-reachability: states that cannot finish."""
        total = len(self.states)
        reverse: list[list[int]] = [[] for _ in range(total)]
        for source, children in enumerate(self.succs):
            for child in children:
                reverse[child].append(source)
        alive = [False] * total
        stack = [i for i in range(total) if self.accepting[i]]
        for i in stack:
            alive[i] = True
        while stack:
            node = stack.pop()
            for source in reverse[node]:
                if not alive[source]:
                    alive[source] = True
                    stack.append(source)
        seen_signatures: set[tuple[str, ...]] = set()
        for state_id in range(total):
            if alive[state_id]:
                continue
            state = self.states[state_id]
            pending = tuple(
                sorted(self.all_done - state.done)
            )
            if pending in seen_signatures:
                continue
            seen_signatures.add(pending)
            states_text = ", ".join(
                f"{k}={s}"
                for k, s in zip(self.system.keys, state.config.states)
            )
            message = (
                f"reachable quiescent-but-incomplete state at depth "
                f"{self.depth[state_id]}: operation(s) "
                f"{', '.join(pending)} can never complete "
                f"(controller states {states_text})"
            )
            wedge = self.wedged.get(state_id)
            if wedge is not None:
                message += f"; a controller wedges: {wedge}"
            self._record(
                "MC-DEAD",
                "pending:" + ",".join(pending),
                message,
                state_id,
                expects="deadlock",
            )


def check_target(
    target: LintTarget,
    max_states: int = DEFAULT_MAX_STATES,
    max_frontier: int = DEFAULT_MAX_FRONTIER,
) -> ModelCheckResult:
    """Model-check a prepared artifact bundle.

    Explores every reachable state of the composed controller network
    under all realizable completion schedules and returns the
    byte-stable report of MC-DEAD / MC-RACE / MC-REF findings plus one
    replayable counterexample per finding.  Raises
    :class:`~repro.errors.ModelCheckBudgetExceeded` when the state or
    frontier budget is exhausted before the frontier drains.
    """
    explorer = _Explorer(target, max_states, max_frontier)
    explorer.run()
    explorer.find_deadlocks()
    report = DiagnosticReport.build(
        target.name, [v.diagnostic for v in explorer.found.values()]
    )
    by_key = {
        (v.diagnostic.rule, v.diagnostic.location): v.cex
        for v in explorer.found.values()
    }
    counterexamples = tuple(
        by_key[(d.rule, d.location)] for d in report.diagnostics
    )
    return ModelCheckResult(
        design=target.name,
        states=len(explorer.states),
        transitions=explorer.transitions,
        accepting=sum(explorer.accepting),
        max_depth=max(explorer.depth, default=0),
        report=report,
        counterexamples=counterexamples,
    )


def check_result(
    result: "SynthesisResult",
    name: "str | None" = None,
    max_states: int = DEFAULT_MAX_STATES,
    max_frontier: int = DEFAULT_MAX_FRONTIER,
) -> ModelCheckResult:
    """Model-check a finished synthesis result."""
    return check_target(
        LintTarget.from_result(result, name=name),
        max_states=max_states,
        max_frontier=max_frontier,
    )


def check_store(
    store: "ArtifactStore",
    name: "str | None" = None,
    max_states: int = DEFAULT_MAX_STATES,
    max_frontier: int = DEFAULT_MAX_FRONTIER,
) -> ModelCheckResult:
    """Model-check a pipeline artifact store (post-``distributed``)."""
    return check_target(
        LintTarget.from_store(store, name=name),
        max_states=max_states,
        max_frontier=max_frontier,
    )


def check_benchmark(
    name: str,
    allocation: "str | None" = None,
    scheduler: str = "list",
    max_states: int = DEFAULT_MAX_STATES,
    max_frontier: int = DEFAULT_MAX_FRONTIER,
) -> ModelCheckResult:
    """Synthesize a registered benchmark and model-check the network."""
    from ..api import synthesize
    from ..benchmarks.registry import benchmark

    entry = benchmark(name)
    result = synthesize(
        entry.factory(),
        allocation if allocation is not None else entry.allocation(),
        scheduler=scheduler,
    )
    return check_result(
        result,
        name=name,
        max_states=max_states,
        max_frontier=max_frontier,
    )
