"""The rule registry of the static verification suite.

Every rule the linter can fire is declared here once — id, severity,
title, what a clean result proves, and the paper section the property
comes from.  Check implementations live in the family modules
(:mod:`.liveness`, :mod:`.fsm_checks`, :mod:`.schedule_checks`,
:mod:`.rtl`) and mint findings through :func:`diag`, so a rule's
severity can never disagree between code, docs and reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import VerificationError
from .diagnostics import Diagnostic


@dataclass(frozen=True)
class Rule:
    """Declaration of one static-verification rule."""

    rule_id: str
    severity: str
    title: str
    proves: str
    reference: str


RULES: tuple[Rule, ...] = (
    # -- controller liveness (marked-graph / netlist family) -------------
    Rule(
        "LIVE001", "error",
        "token-free cycle in the CC-handshake graph",
        "every cycle of the distributed handshake marked graph carries "
        "an initial token, so no controller starves waiting for a "
        "completion that transitively waits on it",
        "paper §4.1–4.2 (Fig. 7 handshake), marked-graph liveness",
    ),
    Rule(
        "LIVE002", "error",
        "completion signal consumed but never produced",
        "every CC_* wire some controller waits on is driven by exactly "
        "the controller executing the producing operation",
        "paper §4.2 step 4 (C_PO inputs)",
    ),
    Rule(
        "LIVE003", "warning",
        "unpruned dead completion net",
        "the Fig. 7 optimization removed every completion output no "
        "other controller receives",
        "paper §4.1 ('C_CO(0) is removed')",
    ),
    Rule(
        "LIVE004", "error",
        "completion net driven by multiple controllers",
        "each CC_* wire has a unique producing controller (one op, one "
        "executing unit)",
        "paper §4.1 (completion-signal netlist)",
    ),
    # -- FSM structure ---------------------------------------------------
    Rule(
        "FSM001", "warning",
        "unreachable state",
        "every controller state is reachable from the initial state",
        "paper Fig. 6 (controller state graphs)",
    ),
    Rule(
        "FSM002", "error",
        "incomplete transition guards",
        "every state has a successor under every valuation of the "
        "inputs it references (the machine can never wedge)",
        "paper §4.2 Algorithm 1 (total transition relation)",
    ),
    Rule(
        "FSM003", "error",
        "overlapping transition guards",
        "guards out of each state are disjoint cubes — the machine is "
        "deterministic",
        "paper §4.2 Algorithm 1 (disjoint guard cubes)",
    ),
    Rule(
        "FSM004", "error",
        "transition guard requires a completion that cannot occur",
        "no guard waits for a completion signal that no unit or "
        "controller in the design generates",
        "paper §4.2 step 4 (predecessor completions)",
    ),
    Rule(
        "FSM005", "warning",
        "declared output never asserted",
        "every declared OF/RE/CC output is asserted by some transition",
        "paper Fig. 5–6 (controller outputs)",
    ),
    Rule(
        "FSM006", "info",
        "declared input never referenced",
        "every declared input appears in some guard (no dangling "
        "completion wires into the controller)",
        "paper Fig. 7 (controller wiring)",
    ),
    # -- schedule / binding ----------------------------------------------
    Rule(
        "SCH001", "error",
        "schedule violates a data dependence",
        "every operation starts strictly after all of its DFG "
        "predecessors",
        "paper §2 (time-step scheduling)",
    ),
    Rule(
        "SCH002", "error",
        "time step over-subscribes the allocation",
        "no step uses more units of a class than allocated",
        "paper §2 (resource-constrained scheduling)",
    ),
    Rule(
        "SCH003", "error",
        "more execution chains than allocated units",
        "each chain of the order-based schedule maps onto its own "
        "arithmetic unit",
        "paper §3 (order-based scheduling)",
    ),
    Rule(
        "SCH004", "error",
        "same-cycle register write conflict on a unit",
        "no two operations bound to one unit start in the same step, so "
        "its result register and operand muxes have one writer per "
        "cycle",
        "paper §3 (one operation per unit per step)",
    ),
    Rule(
        "SCH005", "error",
        "chain order contradicts the time-step schedule",
        "the per-unit execution order (mux select sequence) agrees with "
        "the time-step schedule — no bus contention from inverted "
        "selects",
        "paper §3 (schedule arcs)",
    ),
    Rule(
        "SCH006", "error",
        "TAUBM annotation inconsistent with schedule or binding",
        "every telescopic-bound operation owns a conditional extension "
        "in its step and the TAUBM steps partition the schedule",
        "paper §2.3 / Fig. 2(b) (TAUBM)",
    ),
    # -- model checking (composed-network reachability family) -----------
    Rule(
        "MC-DEAD", "error",
        "reachable quiescent-but-incomplete network state",
        "under every interleaving of telescopic completion levels, the "
        "composed controller network always reaches the state where all "
        "operations of the iteration completed — no reachable deadlock "
        "or livelock, generalizing the runtime deadlock watchdog to all "
        "completion schedules",
        "paper §4.2 (handshake liveness), explicit-state reachability",
    ),
    Rule(
        "MC-RACE", "error",
        "completion-pulse race in a reachable network state",
        "no reachable cycle has two controllers asserting the same CC "
        "net, nor a pulse landing on an already-latched unconsumed "
        "arrival flag of a still-pending consumer — the reachability "
        "counterpart of the structural LIVE002/LIVE004 checks",
        "paper §4.1 (completion-signal netlist), token semantics",
    ),
    Rule(
        "MC-REF", "error",
        "distributed firing sequence refused by the CENT-SYNC spec",
        "every reachable firing sequence of the distributed network is "
        "accepted by the centralized synchronized specification: no "
        "operation starts before its execution-graph predecessors "
        "completed, completes twice in one iteration, completes while "
        "its unit's CSG reports not-done, or double-books its unit",
        "paper §4 (DIST ≡ CENT under reordering), trace refinement",
    ),
    # -- RTL lint --------------------------------------------------------
    Rule(
        "RTL000", "error",
        "RTL generation failed",
        "the distributed artifact is internally consistent enough for "
        "the Verilog backend to elaborate it at all",
        "implementation invariant of the Verilog backend",
    ),
    Rule(
        "RTL001", "error",
        "net driven by multiple sources",
        "every net of the generated top level has exactly one driver",
        "paper Fig. 7 (generated wiring)",
    ),
    Rule(
        "RTL002", "error",
        "net read but never driven",
        "no floating wires feed controller instances or latches",
        "paper Fig. 7 (generated wiring)",
    ),
    Rule(
        "RTL003", "warning",
        "net driven but never read",
        "the emitted top level carries no dead wiring (mirrors the "
        "Fig. 7 completion-output pruning at RTL level)",
        "paper §4.1 (signal pruning)",
    ),
    Rule(
        "RTL004", "error",
        "identifier collision after sanitize_identifier",
        "module, port and net names stay unique after Verilog "
        "sanitization — two source names never alias one wire",
        "implementation invariant of the Verilog backend",
    ),
    Rule(
        "RTL005", "warning",
        "combinational cycle through completion handshake paths",
        "same-cycle CC forwarding paths between controllers do not "
        "close a combinational loop (when they do, the loop is cut "
        "only by the arrival-latch fixed point and needs timing care)",
        "paper §4.2 (same-cycle completion forwarding)",
    ),
)

_BY_ID = {r.rule_id: r for r in RULES}


def rule(rule_id: str) -> Rule:
    """Look up a declared rule by id."""
    try:
        return _BY_ID[rule_id]
    except KeyError:
        raise VerificationError(f"unknown rule id {rule_id!r}") from None


def diag(
    rule_id: str, artifact: str, location: str, message: str,
    hint: str = "",
) -> Diagnostic:
    """Mint a finding; the severity always comes from the registry."""
    declared = rule(rule_id)
    return Diagnostic(
        rule=declared.rule_id,
        severity=declared.severity,
        artifact=artifact,
        location=location,
        message=message,
        hint=hint,
    )


def rule_table() -> str:
    """The rule catalogue as a Markdown table (docs are generated
    from the same registry the checkers use)."""
    lines = [
        "| id | severity | what a clean result proves | reference |",
        "|---|---|---|---|",
    ]
    for r in RULES:
        lines.append(
            f"| `{r.rule_id}` | {r.severity} | {r.proves} "
            f"| {r.reference} |"
        )
    return "\n".join(lines)
