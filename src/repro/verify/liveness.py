"""Controller-liveness rules (LIVE family).

The distributed control unit coordinates through CC completion pulses;
under pipelined execution it is a marked graph whose places are the
handshake arcs.  Liveness holds exactly when every directed cycle
carries at least one initial token (the per-chain wrap token) — a
token-free cycle means a ring of controllers each waiting on a
completion that transitively waits on itself.  The remaining rules
check the netlist side of the same property: every consumed wire has
exactly one producer and every producer that survived the Fig. 7
pruning has a consumer.
"""

from __future__ import annotations

from ..analysis.marked_graph import handshake_edges, token_free_cycle
from ..fsm.signals import is_op_completion, op_completion
from .diagnostics import Diagnostic
from .rules import diag
from .target import LintTarget

ARTIFACT = "distributed"


def check_liveness(target: LintTarget) -> list[Diagnostic]:
    """Run every LIVE rule on a design."""
    findings: list[Diagnostic] = []
    findings.extend(_check_marked_graph(target))
    findings.extend(_check_netlist(target))
    return findings


def _check_marked_graph(target: LintTarget) -> list[Diagnostic]:
    bound = target.bound
    cycle = token_free_cycle(handshake_edges(bound))
    if cycle is None:
        return []
    loop = " -> ".join(cycle + (cycle[0],))
    starved = [
        op_completion(u)
        for u, v in zip(cycle, cycle[1:] + cycle[:1])
        if bound.binding.get(u) != bound.binding.get(v)
    ]
    named = starved[0] if starved else op_completion(cycle[0])
    return [
        diag(
            "LIVE001",
            ARTIFACT,
            f"cycle {loop}",
            f"token-free cycle in the CC-handshake graph; net {named} "
            f"can never carry its first pulse",
            "every handshake cycle must cross a chain wrap arc (the "
            "initial token); check the schedule arcs of the order pass",
        )
    ]


def _check_netlist(target: LintTarget) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    controllers = target.controllers
    producers: dict[str, list[str]] = {}
    consumers: dict[str, list[str]] = {}
    for unit_name, fsm in controllers.items():
        for signal in fsm.outputs:
            if is_op_completion(signal):
                producers.setdefault(signal, []).append(unit_name)
        for signal in fsm.inputs:
            if is_op_completion(signal):
                consumers.setdefault(signal, []).append(unit_name)

    for signal in sorted(set(consumers) - set(producers)):
        sinks = ", ".join(sorted(consumers[signal]))
        findings.append(
            diag(
                "LIVE002",
                ARTIFACT,
                f"net {signal}",
                f"completion signal {signal} is consumed by "
                f"controller(s) of {sinks} but no controller produces "
                f"it; the consumers wait forever",
                "the controller executing the producing operation must "
                "keep this CC output (it must not be pruned)",
            )
        )
    for signal in sorted(set(producers) - set(consumers)):
        source = ", ".join(sorted(producers[signal]))
        findings.append(
            diag(
                "LIVE003",
                ARTIFACT,
                f"net {signal}",
                f"completion signal {signal} is produced by {source} "
                f"but consumed by no controller",
                "apply the Fig. 7 pruning (prune_outputs) to drop the "
                "dead wire",
            )
        )
    for signal, units in sorted(producers.items()):
        if len(units) > 1:
            source = ", ".join(sorted(units))
            findings.append(
                diag(
                    "LIVE004",
                    ARTIFACT,
                    f"net {signal}",
                    f"completion signal {signal} is driven by "
                    f"{len(units)} controllers ({source}); completion "
                    f"nets must have a unique producer",
                    "exactly the controller executing the operation "
                    "may assert its CC signal",
                )
            )
    return findings
