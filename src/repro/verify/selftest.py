"""Detector-coverage self-test: fault classes must trip named rules.

:mod:`repro.faults` defines the runtime fault model — six injector
classes, each tagged with a ``kind``.  Every kind has a *structural*
shadow: the artifact corruption a design would carry if that fault were
baked in at synthesis time instead of injected at run time.  This
module materializes one corrupted artifact bundle per fault kind and
pins which lint rule must flag it, so the static suite's detector
coverage is tested against the same fault taxonomy the dynamic
campaigns sweep — a new injector kind without a structural shadow (or a
shadow no rule catches) fails the self-test.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, replace
from collections.abc import Callable

from ..errors import VerificationError
from ..fsm.model import FSM, Transition, make_transition
from ..fsm.optimize import prune_outputs
from ..fsm.signals import is_unit_completion
from ..scheduling.schedule import (
    TaubmSchedule,
    TaubmStep,
    TimeStepSchedule,
)
from .diagnostics import DiagnosticReport
from .engine import lint_target
from .target import LintTarget


def injector_fault_kinds() -> frozenset[str]:
    """Every ``kind`` tag declared by a concrete fault model.

    Fault models come in two flavours — :class:`FaultInjector`
    subclasses and completion-model wrappers — so this keys on the
    declared ``kind`` tag rather than a base class.
    """
    from ..faults import models

    kinds: set[str] = set()
    for obj in vars(models).values():
        if not inspect.isclass(obj) or inspect.isabstract(obj):
            continue
        kind = vars(obj).get("kind")
        if isinstance(kind, str) and kind != "fault":
            kinds.add(kind)
    return frozenset(kinds)


@dataclass(frozen=True)
class StructuralFault:
    """One fault kind's structural shadow and the rule that catches it.

    ``mc_rule_id`` additionally pins the model-check rule the composed
    network exploration must fire on the corrupted bundle — set for the
    fault kinds whose corruption is *behavioral* (visible only in the
    product state space); artifact-level corruptions (schedule, TAUBM,
    unreachable states) stay the lint rules' job.
    """

    kind: str
    rule_id: str
    description: str
    mutate: Callable[[LintTarget], LintTarget]
    mc_rule_id: "str | None" = None


@dataclass(frozen=True)
class SelftestOutcome:
    """Result of one structural-fault injection.

    ``mc_detected`` is ``None`` when the fault has no pinned model-check
    rule or the model checker was not run.
    """

    kind: str
    rule_id: str
    detected: bool
    report: DiagnosticReport
    mc_detected: "bool | None" = None


# ---------------------------------------------------------------------
# Artifact mutators (the structural shadows)
# ---------------------------------------------------------------------
def _unsuitable(kind: str, why: str) -> VerificationError:
    return VerificationError(
        f"design unsuitable for the {kind!r} self-test: {why}"
    )


def _raw_schedule(dfg, start) -> TimeStepSchedule:
    """A schedule bypassing constructor validation.

    Models a corrupted artifact (tampered cache entry, buggy custom
    pass): exactly what the static rules exist to catch, and exactly
    what the validating constructor would refuse to build.
    """
    schedule = TimeStepSchedule.__new__(TimeStepSchedule)
    object.__setattr__(schedule, "dfg", dfg)
    object.__setattr__(schedule, "start", dict(start))
    return schedule


def _wedge_wait_state(target: LintTarget) -> LintTarget:
    """stuck-completion: delete the C-low wait path of one state.

    A CSG stuck low means the controller never leaves the execution
    state; structurally, a machine *built* without the C-low branch has
    an incomplete transition relation — FSM002.
    """
    for unit_name, fsm in target.controllers.items():
        for t in fsm.transitions:
            if any(
                is_unit_completion(name) and not required
                for name, required in t.guard
            ):
                keep = tuple(
                    other
                    for other in fsm.transitions
                    if not (
                        other.source == t.source
                        and any(
                            is_unit_completion(name) and not required
                            for name, required in other.guard
                        )
                    )
                )
                mutated = replace(fsm, transitions=keep)
                controllers = dict(target.controllers)
                controllers[unit_name] = mutated
                return target.with_controllers(controllers)
    raise _unsuitable("stuck-completion", "no C-low wait transition")


def _drop_producer_output(target: LintTarget) -> LintTarget:
    """dropped-pulse: the producer never drives a consumed CC net."""
    for net in target.distributed.live_nets():
        fsm = target.controllers.get(net.producer_unit)
        if fsm is None or net.signal not in fsm.outputs:
            continue
        keep = [s for s in fsm.outputs if s != net.signal]
        controllers = dict(target.controllers)
        controllers[net.producer_unit] = prune_outputs(fsm, keep)
        return target.with_controllers(controllers)
    raise _unsuitable("dropped-pulse", "no live completion net")


def _add_spurious_producer(target: LintTarget) -> LintTarget:
    """spurious-pulse: a second controller also drives a CC net."""
    for net in target.distributed.live_nets():
        for unit_name, fsm in target.controllers.items():
            if unit_name == net.producer_unit:
                continue
            if net.signal in fsm.outputs or not fsm.transitions:
                continue
            first = fsm.transitions[0]
            impostor = replace(
                fsm,
                outputs=(*fsm.outputs, net.signal),
                transitions=(
                    replace(
                        first,
                        outputs=frozenset(first.outputs | {net.signal}),
                    ),
                    *fsm.transitions[1:],
                ),
            )
            controllers = dict(target.controllers)
            controllers[unit_name] = impostor
            return target.with_controllers(controllers)
    raise _unsuitable("spurious-pulse", "needs two controllers")


def _add_seu_trap_state(target: LintTarget) -> LintTarget:
    """state-flip: a state only an upset can reach."""
    unit_name, fsm = next(iter(target.controllers.items()))
    trap = "SEU_TRAP"
    if trap in fsm.states:
        raise _unsuitable("state-flip", "trap state already present")
    mutated = replace(
        fsm,
        states=(*fsm.states, trap),
        transitions=(
            *fsm.transitions,
            make_transition(trap, trap),
        ),
    )
    controllers = dict(target.controllers)
    controllers[unit_name] = mutated
    return target.with_controllers(controllers)


def _strip_tau_extension(target: LintTarget) -> LintTarget:
    """delayed-completion: a telescopic op loses its extension slot.

    The TAUBM contract gives every telescopic-bound operation a
    conditional extension; without it, any completion slower than the
    base step overruns the schedule — exactly what the runtime
    delayed-completion injector provokes.
    """
    for index, step in enumerate(target.taubm.steps):
        if step.tau_ops:
            stripped = TaubmStep(
                index=step.index,
                ops=step.ops,
                tau_ops=step.tau_ops[1:],
            )
            steps = (
                *target.taubm.steps[:index],
                stripped,
                *target.taubm.steps[index + 1 :],
            )
            return replace(
                target,
                taubm=TaubmSchedule(base=target.taubm.base, steps=steps),
            )
    raise _unsuitable("delayed-completion", "no TAU-annotated step")


def _double_book_unit_slot(target: LintTarget) -> LintTarget:
    """intermittent-slow: an op overstays into its successor's slot.

    An intermittently slow unit makes consecutive chain operations
    overlap; the structural shadow schedules both in the same step —
    a same-cycle register write conflict on the unit.
    """
    for unit in target.bound.used_units():
        ops = target.bound.ops_on_unit(unit.name)
        if len(ops) >= 2:
            start = dict(target.schedule.start)
            start[ops[1]] = start[ops[0]]
            return replace(
                target,
                schedule=_raw_schedule(target.dfg, start),
            )
    raise _unsuitable("intermittent-slow", "no unit with two ops")


#: the pinned fault-kind → rule coverage map.
STRUCTURAL_FAULTS: tuple[StructuralFault, ...] = (
    StructuralFault(
        kind="stuck-completion",
        rule_id="FSM002",
        description="CSG wait path missing: incomplete guards wedge "
        "the controller",
        mutate=_wedge_wait_state,
        mc_rule_id="MC-DEAD",
    ),
    StructuralFault(
        kind="delayed-completion",
        rule_id="SCH006",
        description="telescopic op without a TAUBM extension overruns "
        "its step",
        mutate=_strip_tau_extension,
    ),
    StructuralFault(
        kind="dropped-pulse",
        rule_id="LIVE002",
        description="consumed completion net with no producer starves "
        "its consumers",
        mutate=_drop_producer_output,
        mc_rule_id="MC-DEAD",
    ),
    StructuralFault(
        kind="spurious-pulse",
        rule_id="LIVE004",
        description="completion net with two producers pulses "
        "spuriously",
        mutate=_add_spurious_producer,
        mc_rule_id="MC-RACE",
    ),
    StructuralFault(
        kind="state-flip",
        rule_id="FSM001",
        description="state reachable only through a bit upset",
        mutate=_add_seu_trap_state,
    ),
    StructuralFault(
        kind="intermittent-slow",
        rule_id="SCH004",
        description="chain neighbours double-book one unit slot",
        mutate=_double_book_unit_slot,
    ),
)


def covered_fault_kinds() -> frozenset[str]:
    """Fault kinds with a pinned structural shadow."""
    return frozenset(f.kind for f in STRUCTURAL_FAULTS)


def run_selftest(
    target: LintTarget, model_check: bool = False
) -> tuple[SelftestOutcome, ...]:
    """Inject every structural fault into the target and lint it.

    The clean target must lint without error-severity findings first;
    each corrupted bundle must then be flagged by its pinned rule.
    With ``model_check`` the faults carrying an ``mc_rule_id`` are
    additionally run through the composed-network model checker (which
    must also be clean on the uncorrupted target), and ``mc_detected``
    records whether the pinned MC rule fired.
    """
    clean = lint_target(target)
    if clean.has_errors:
        raise VerificationError(
            f"self-test target {target.name!r} is not clean:\n"
            f"{clean.render()}"
        )
    if model_check:
        from .modelcheck import check_target

        mc_clean = check_target(target)
        if not mc_clean.clean:
            raise VerificationError(
                f"self-test target {target.name!r} fails model "
                f"checking:\n{mc_clean.report.render()}"
            )
    outcomes = []
    for fault in STRUCTURAL_FAULTS:
        corrupted = fault.mutate(target)
        report = lint_target(corrupted)
        mc_detected: "bool | None" = None
        if model_check and fault.mc_rule_id is not None:
            from .modelcheck import check_target

            mc_report = check_target(corrupted).report
            mc_detected = fault.mc_rule_id in mc_report.rules_fired()
        outcomes.append(
            SelftestOutcome(
                kind=fault.kind,
                rule_id=fault.rule_id,
                detected=fault.rule_id in report.rules_fired(),
                report=report,
                mc_detected=mc_detected,
            )
        )
    return tuple(outcomes)
