"""FSM structure rules (FSM family).

Per-controller checks mirroring (and extending) :meth:`FSM.validate`,
but emitting diagnostics instead of raising on first defect:
reachability, completeness and determinism by exhaustive enumeration
over the inputs each state references, plus interface hygiene (outputs
never asserted, inputs never read) and — given the whole design —
guards waiting on completion signals nothing generates.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from ..fsm.model import FSM
from ..fsm.signals import (
    is_op_completion,
    is_unit_completion,
    unit_completion,
)
from .diagnostics import Diagnostic
from .rules import diag
from .target import LintTarget

#: cap on example valuations quoted in one finding.
_MAX_EXAMPLES = 3


def _cube_str(valuation: dict) -> str:
    return "·".join(
        name if value else f"{name}'"
        for name, value in sorted(valuation.items())
    ) or "1"


def lint_fsm(
    fsm: FSM,
    artifact: "str | None" = None,
    available: "Iterable[str] | None" = None,
) -> list[Diagnostic]:
    """Run every FSM rule on one machine.

    ``available`` names the completion signals the surrounding design
    can actually raise; when ``None`` (standalone lint of a single FSM)
    the FSM004 dead-guard rule is skipped.
    """
    anchor = artifact or f"controller:{fsm.name}"
    findings: list[Diagnostic] = []
    findings.extend(_check_reachability(fsm, anchor))
    findings.extend(_check_guard_logic(fsm, anchor))
    if available is not None:
        findings.extend(_check_dead_guards(fsm, anchor, set(available)))
    findings.extend(_check_interface(fsm, anchor))
    return findings


def _reachable_states(fsm: FSM) -> set[str]:
    reachable = {fsm.initial}
    frontier = [fsm.initial]
    while frontier:
        state = frontier.pop()
        for t in fsm.transitions_from(state):
            if t.target not in reachable:
                reachable.add(t.target)
                frontier.append(t.target)
    return reachable


def _check_reachability(fsm: FSM, anchor: str) -> list[Diagnostic]:
    reachable = _reachable_states(fsm)
    return [
        diag(
            "FSM001",
            anchor,
            f"state {state}",
            f"state {state!r} is unreachable from the initial state "
            f"{fsm.initial!r}",
            "remove it with fsm.optimize.remove_unreachable_states",
        )
        for state in fsm.states
        if state not in reachable
    ]


def _check_guard_logic(fsm: FSM, anchor: str) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for state in fsm.states:
        outgoing = fsm.transitions_from(state)
        if not outgoing:
            findings.append(
                diag(
                    "FSM002",
                    anchor,
                    f"state {state}",
                    f"state {state!r} has no outgoing transitions",
                    "every state needs a total transition relation",
                )
            )
            continue
        names = fsm.referenced_inputs(state)
        missing: list[str] = []
        overlaps: dict[tuple[int, int], list[str]] = {}
        for values in itertools.product(
            (False, True), repeat=len(names)
        ):
            valuation = dict(zip(names, values))
            matching = [
                i for i, t in enumerate(outgoing) if t.matches(valuation)
            ]
            if not matching:
                missing.append(_cube_str(valuation))
            elif len(matching) > 1:
                for pair in itertools.combinations(matching, 2):
                    overlaps.setdefault(pair, []).append(
                        _cube_str(valuation)
                    )
        if missing:
            shown = ", ".join(missing[:_MAX_EXAMPLES])
            more = len(missing) - min(len(missing), _MAX_EXAMPLES)
            suffix = f" (+{more} more)" if more else ""
            findings.append(
                diag(
                    "FSM002",
                    anchor,
                    f"state {state}",
                    f"state {state!r} has no transition under "
                    f"{shown}{suffix}; the controller wedges there",
                    "add a self-loop or completing transition covering "
                    "the missing valuations",
                )
            )
        for (i, j), examples in sorted(overlaps.items()):
            findings.append(
                diag(
                    "FSM003",
                    anchor,
                    f"state {state}",
                    f"guards [{outgoing[i].guard_str()}] and "
                    f"[{outgoing[j].guard_str()}] of state {state!r} "
                    f"overlap under {examples[0]}; the next state is "
                    f"ambiguous",
                    "split the guards into disjoint cubes "
                    "(fsm.model.not_all_cubes)",
                )
            )
    return findings


def _check_dead_guards(
    fsm: FSM, anchor: str, available: set[str]
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for t in fsm.transitions:
        for name, required in t.guard:
            completion = is_op_completion(name) or is_unit_completion(
                name
            )
            if completion and required and name not in available:
                findings.append(
                    diag(
                        "FSM004",
                        anchor,
                        f"state {t.source}",
                        f"transition [{t.guard_str()}] of state "
                        f"{t.source!r} requires {name} high, but "
                        f"nothing in the design generates {name}; the "
                        f"transition can never fire",
                        "wire the producing controller/CSG or drop the "
                        "literal",
                    )
                )
    return findings


def _check_interface(fsm: FSM, anchor: str) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    asserted = (
        set().union(*(t.outputs for t in fsm.transitions))
        if fsm.transitions
        else set()
    )
    for signal in fsm.outputs:
        if signal not in asserted:
            findings.append(
                diag(
                    "FSM005",
                    anchor,
                    f"output {signal}",
                    f"declared output {signal} is never asserted by "
                    f"any transition",
                    "prune it with fsm.optimize.prune_outputs",
                )
            )
    referenced = {name for t in fsm.transitions for name, _ in t.guard}
    for signal in fsm.inputs:
        if signal not in referenced:
            findings.append(
                diag(
                    "FSM006",
                    anchor,
                    f"input {signal}",
                    f"declared input {signal} is never referenced by "
                    f"any guard",
                    "drop the dangling input from the interface",
                )
            )
    return findings


def check_fsms(target: LintTarget) -> list[Diagnostic]:
    """Run the FSM rules on every controller of the design."""
    available: set[str] = set()
    for unit in target.allocation:
        if unit.is_telescopic:
            available.add(unit_completion(unit.name))
    for fsm in target.controllers.values():
        for signal in fsm.outputs:
            if is_op_completion(signal):
                available.add(signal)
    findings: list[Diagnostic] = []
    for fsm in target.controllers.values():
        findings.extend(
            lint_fsm(
                fsm,
                artifact=f"controller:{fsm.name}",
                available=available,
            )
        )
    return findings
