"""Entry points of the static verification suite.

``lint_*`` builds a :class:`LintTarget` from whatever the caller has —
a finished :class:`~repro.api.SynthesisResult`, a pipeline artifact
store, or a benchmark name — runs every rule family in declared order
and returns the canonical :class:`DiagnosticReport`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .diagnostics import Diagnostic, DiagnosticReport
from .fsm_checks import check_fsms
from .liveness import check_liveness
from .rtl import check_rtl
from .schedule_checks import check_schedule
from .target import LintTarget

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..api import SynthesisResult
    from ..pipeline.artifacts import ArtifactStore

#: the rule families, in execution order.
CHECKERS = (
    check_liveness,
    check_fsms,
    check_schedule,
    check_rtl,
)


def lint_target(target: LintTarget) -> DiagnosticReport:
    """Run every rule family on a prepared artifact bundle."""
    findings: list[Diagnostic] = []
    for checker in CHECKERS:
        findings.extend(checker(target))
    return DiagnosticReport.build(target.name, findings)


def lint_result(
    result: "SynthesisResult", name: "str | None" = None
) -> DiagnosticReport:
    """Lint a finished synthesis result."""
    return lint_target(LintTarget.from_result(result, name=name))


def lint_store(
    store: "ArtifactStore", name: "str | None" = None
) -> DiagnosticReport:
    """Lint a pipeline artifact store (post-``distributed``)."""
    return lint_target(LintTarget.from_store(store, name=name))


def lint_benchmark(
    name: str,
    allocation: "str | None" = None,
    scheduler: str = "list",
) -> DiagnosticReport:
    """Synthesize a registered benchmark and lint the artifacts."""
    from ..api import synthesize
    from ..benchmarks.registry import benchmark

    entry = benchmark(name)
    result = synthesize(
        entry.factory(),
        allocation if allocation is not None else entry.allocation(),
        scheduler=scheduler,
    )
    return lint_result(result, name=name)
