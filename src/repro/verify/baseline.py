"""Committed lint baselines and the severity gate.

A baseline is the accepted :class:`DiagnosticReport` of one design,
committed as ``baselines/lint/<design>.json`` (byte-stable, trailing
newline).  The gate compares a fresh report against it: *new*
diagnostics at or above the ``fail_on`` severity fail the run, known
ones are accepted, and resolved ones are reported so the baseline can
be tightened.  ``check_bytes`` additionally demands the serialized
report be byte-identical to the committed file — the CI drift gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..errors import VerificationError
from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    severity_rank,
)

#: repository-relative default location of committed lint baselines.
DEFAULT_BASELINE_DIR = "baselines/lint"

#: repository-relative default location of model-check baselines.
DEFAULT_CHECK_BASELINE_DIR = "baselines/check"


def baseline_path(directory: "str | Path", design: str) -> Path:
    return Path(directory) / f"{design}.json"


def write_baseline(
    directory: "str | Path", report: DiagnosticReport
) -> Path:
    """Persist a report as the accepted baseline of its design."""
    path = baseline_path(directory, report.design)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report.to_json() + "\n", encoding="utf-8")
    return path


def load_baseline(
    directory: "str | Path", design: str
) -> "DiagnosticReport | None":
    """The committed baseline of a design, or ``None`` if absent."""
    path = baseline_path(directory, design)
    if not path.is_file():
        return None
    try:
        return DiagnosticReport.from_json(
            path.read_text(encoding="utf-8")
        )
    except (ValueError, KeyError) as exc:
        raise VerificationError(
            f"corrupt lint baseline {path}: {exc}"
        ) from exc


@dataclass(frozen=True)
class GateResult:
    """Outcome of gating one report against its baseline."""

    design: str
    fail_on: str
    new: tuple[Diagnostic, ...]
    known: tuple[Diagnostic, ...]
    resolved: tuple[Diagnostic, ...]
    byte_stable: "bool | None" = None

    @property
    def passed(self) -> bool:
        ok = not self.new
        if self.byte_stable is not None:
            ok = ok and self.byte_stable
        return ok

    def render(self) -> str:
        parts = [
            f"gate {self.design}: "
            f"{len(self.new)} new / {len(self.known)} known / "
            f"{len(self.resolved)} resolved at fail-on={self.fail_on}"
        ]
        for d in self.new:
            parts.append(f"  NEW {d.render()}")
        for d in self.resolved:
            parts.append(f"  RESOLVED {d.render()}")
        if self.byte_stable is False:
            parts.append(
                "  baseline file is not byte-identical to the fresh "
                "report (regenerate with --write-baseline)"
            )
        return "\n".join(parts)


def gate_report(
    report: DiagnosticReport,
    baseline: "DiagnosticReport | None",
    fail_on: str = "error",
    check_bytes: bool = False,
) -> GateResult:
    """Compare a fresh report against the accepted baseline.

    ``fail_on`` is the minimum severity that can fail the gate
    (``"never"`` disables severity gating entirely, leaving only the
    optional byte-stability check).
    """
    if fail_on == "never":
        gated: tuple[Diagnostic, ...] = ()
    else:
        severity_rank(fail_on)  # validate the threshold name
        gated = report.at_least(fail_on)
    accepted = set(baseline.diagnostics) if baseline else set()
    fresh = set(report.diagnostics)
    new = tuple(d for d in gated if d not in accepted)
    known = tuple(d for d in report.diagnostics if d in accepted)
    resolved = tuple(
        sorted(
            (d for d in accepted - fresh),
            key=lambda d: d.sort_key,
        )
    )
    byte_stable: "bool | None" = None
    if check_bytes:
        byte_stable = (
            baseline is not None
            and baseline.to_json() == report.to_json()
        )
    return GateResult(
        design=report.design,
        fail_on=fail_on,
        new=new,
        known=known,
        resolved=resolved,
        byte_stable=byte_stable,
    )
