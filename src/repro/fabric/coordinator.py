"""The fabric coordinator: shard leases, heartbeats, failover.

One coordinator owns the missing shards of one checkpointed run.  It
listens on a TCP socket, hands each connecting worker node the pickled
work function once (``welcome``), then leases shards one at a time on
request.  Every lease carries a deadline; liveness is tracked through
one-way worker heartbeats.  A shard result is journaled through the
:class:`~repro.fabric.replica.ReplicatedJournal` *before* the worker
receives its ``committed`` ack (write-ahead acknowledgement), so an
acked shard is durable in both journal copies and a coordinator
restart resumes byte-identically.

The lease state machine per shard::

    PENDING --grant--> LEASED --commit--> DONE
       ^                 |
       |   revoke (lease deadline passed, heartbeats missed,
       +---- connection lost, or worker process reaped) ------+

Revocations and node losses are recovery *events*, never errors: the
shard re-enters the pending queue (or, after repeated revocations,
runs in the coordinator process itself) and the run completes with
output byte-identical to a serial run.  A worker that was revoked but
survives (slow heartbeats, long hang) may still commit its shard late;
commits are idempotent, and the pure work function guarantees both
computations produced the same bytes.

Timing is deterministic where it matters: lease deadlines and the
heartbeat-miss window are jittered with the shared SHA-256
:func:`~repro.perf.engine.deterministic_jitter` scheme (same as
:meth:`~repro.runtime.policy.RunPolicy.backoff_delay`), never with a
wall-clock RNG, so chaos drills replay along identical schedules.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from ..errors import (
    FabricError,
    FabricProtocolError,
    SupervisionError,
)
from ..perf.engine import deterministic_jitter
from ..runtime.policy import RunPolicy, RunReport, record_event
from .protocol import recv_message, send_message
from .replica import ReplicatedJournal

#: idle poll interval of the lease monitor thread (seconds)
MONITOR_TICK_S = 0.05

#: heartbeats a node may miss before its leases are revoked
HEARTBEAT_MISSES = 4


@dataclass
class _Lease:
    shard: int
    node: int
    deadline: float
    grant: int


@dataclass
class _Node:
    node_id: int
    last_seen: float
    lost: bool = False
    leases: set = field(default_factory=set)


class Coordinator:
    """Lease missing shards to worker nodes and journal every result.

    ``work`` maps shard index → work item (only the shards a replay
    pass found missing); ``keys`` maps shard index → content-addressed
    journal key.  ``policy`` supplies the failure retry budget, the
    ``on_failure`` last resort and the chaos configuration shipped to
    workers; ``heartbeat_s`` and ``lease_timeout_s`` come from the
    :class:`~repro.fabric.runtime.FabricConfig`.
    """

    def __init__(
        self,
        fn,
        work: "dict[int, object]",
        *,
        keys: "dict[int, str]",
        journal: ReplicatedJournal,
        policy: "RunPolicy | None" = None,
        report: "RunReport | None" = None,
        token: str = "",
        bind_host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = 0.25,
        lease_timeout_s: float = 60.0,
    ) -> None:
        self._fn = fn
        self._work = dict(work)
        self._keys = dict(keys)
        self._journal = journal
        self._policy = policy if policy is not None else RunPolicy()
        self._report = report
        self._token = token
        self._bind_host = bind_host
        self._port = port
        self._heartbeat_s = heartbeat_s
        self._lease_timeout_s = lease_timeout_s
        self._task_blob = pickle.dumps(
            (fn, self._policy.chaos), protocol=4
        )

        self._lock = threading.Lock()
        self._pending: deque[int] = deque(sorted(self._work))
        self._leases: "dict[int, _Lease]" = {}
        self._grants: "dict[int, int]" = {}
        self._failures: "dict[int, int]" = {}
        self._revocations: "dict[int, int]" = {}
        self._results: "dict[int, object]" = {}
        self._nodes: "dict[int, _Node]" = {}
        self._local_queue: deque[int] = deque()
        self._fatal: "BaseException | None" = None
        self._done = threading.Event()
        self._server: "socket.socket | None" = None
        self._threads: list[threading.Thread] = []
        self._closed = False
        if not self._work:
            self._done.set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "tuple[str, int]":
        """Bind, start the accept and monitor threads, return the
        address workers should connect to."""
        self._server = socket.create_server(
            (self._bind_host, self._port)
        )
        self._server.settimeout(MONITOR_TICK_S * 4)
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    @property
    def address(self) -> "tuple[str, int]":
        if self._server is None:
            raise FabricError("coordinator is not listening yet")
        host, port = self._server.getsockname()[:2]
        return host, port

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: "float | None" = None) -> bool:
        return self._done.wait(timeout)

    def results(self) -> "dict[int, object]":
        """Computed shard values; raises the fatal error, if any."""
        if self._fatal is not None:
            raise self._fatal
        with self._lock:
            missing = [i for i in self._work if i not in self._results]
            if missing:
                raise FabricError(
                    f"fabric run ended with {len(missing)} uncomputed "
                    f"shard(s): {missing[:8]}"
                )
            return dict(self._results)

    def close(self) -> None:
        self._closed = True
        self._done.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover - racing close
                pass

    # ------------------------------------------------------------------
    # shared state transitions (call with the lock held)
    # ------------------------------------------------------------------
    def _record(self, kind: str, detail: str, **kwargs) -> None:
        record_event(self._report, kind, detail, **kwargs)

    def _revocation_cap(self) -> int:
        return max(3, self._policy.retry_budget() + 1)

    def _requeue_locked(self, shard: int, why: str) -> None:
        """Return a revoked shard to the queue (or to local compute)."""
        self._revocations[shard] = self._revocations.get(shard, 0) + 1
        self._record(
            "lease-revoke",
            f"lease on shard {shard} revoked ({why}); reassigning",
            item=shard,
            attempt=self._revocations[shard],
        )
        if self._revocations[shard] >= self._revocation_cap():
            self._record(
                "serial-degrade",
                f"shard {shard} was revoked "
                f"{self._revocations[shard]} times; computing it in "
                f"the coordinator process",
                item=shard,
            )
            self._local_queue.append(shard)
        else:
            self._pending.append(shard)

    def _revoke_node_locked(self, node_id: int, why: str) -> None:
        node = self._nodes.get(node_id)
        if node is None or node.lost:
            return
        node.lost = True
        held = sorted(node.leases)
        for shard in held:
            lease = self._leases.pop(shard, None)
            if lease is not None and shard not in self._results:
                self._requeue_locked(shard, f"node {node_id} {why}")
        node.leases.clear()
        self._record(
            "node-loss",
            f"worker node {node_id} {why}"
            + (f" holding shard(s) {held}" if held else ""),
        )

    def revoke_node(self, node_id: int, why: str) -> None:
        """Revoke every lease of a node known to be gone (reaped
        process, severed connection)."""
        if self.done:
            return
        with self._lock:
            self._revoke_node_locked(node_id, why)

    def absorb_pending(self) -> None:
        """Move every queued shard to the local compute queue.

        The runtime's last resort when no worker nodes remain and the
        restart budget is spent: the coordinator process finishes the
        campaign itself rather than deadlocking on an empty fleet.
        Shards still under (doomed) leases are picked up once the
        monitor revokes them.
        """
        with self._lock:
            while self._pending:
                shard = self._pending.popleft()
                if shard in self._results:
                    continue
                self._record(
                    "serial-degrade",
                    f"no worker nodes remain; computing shard "
                    f"{shard} in the coordinator process",
                    item=shard,
                )
                self._local_queue.append(shard)

    def _fail_fatally(self, error: BaseException) -> None:
        if self._fatal is None:
            self._fatal = error
        self._done.set()

    # ------------------------------------------------------------------
    # commit / failure paths
    # ------------------------------------------------------------------
    def _commit(self, shard: int, value: object) -> bool:
        """Journal and store one shard; False when it was already
        committed (idempotent late delivery)."""
        with self._lock:
            if shard in self._results or self._fatal is not None:
                return False
            lease = self._leases.pop(shard, None)
            if lease is not None:
                node = self._nodes.get(lease.node)
                if node is not None:
                    node.leases.discard(shard)
            try:
                self._journal.put(self._keys[shard], value)
            except BaseException as exc:
                self._fail_fatally(exc)
                raise
            self._results[shard] = value
            if len(self._results) == len(self._work):
                self._done.set()
            return True

    def _handle_failure(self, shard: int, detail: str) -> None:
        policy = self._policy
        with self._lock:
            lease = self._leases.pop(shard, None)
            if lease is not None:
                node = self._nodes.get(lease.node)
                if node is not None:
                    node.leases.discard(shard)
            if shard in self._results:
                return
            self._failures[shard] = self._failures.get(shard, 0) + 1
            attempts = self._failures[shard]
            if attempts < policy.retry_budget():
                self._record(
                    "retry", detail, item=shard, attempt=attempts
                )
                self._pending.append(shard)
                return
            if policy.on_failure == "skip":
                self._record(
                    "skip",
                    f"dropped after {attempts} attempt(s): {detail}",
                    item=shard,
                    attempt=attempts,
                )
            elif policy.on_failure == "serial":
                self._record(
                    "serial-degrade",
                    f"final in-process attempt after {attempts} "
                    f"fabric attempt(s): {detail}",
                    item=shard,
                    attempt=attempts,
                )
                self._local_queue.append(shard)
                return
            else:
                self._fail_fatally(
                    SupervisionError(
                        f"work item {shard} failed after {attempts} "
                        f"attempt(s): {detail}",
                        item=shard,
                        attempts=attempts,
                    )
                )
                return
        # on_failure == "skip": the hole is an explicit None result
        self._commit_skip(shard)

    def _commit_skip(self, shard: int) -> None:
        try:
            self._commit(shard, None)
        except BaseException:
            pass

    def run_local(self, shard: int) -> None:
        """Compute one shard in the coordinator process and commit."""
        try:
            value = self._fn(self._work[shard])
        except BaseException as exc:
            self._fail_fatally(exc)
            return
        try:
            self._commit(shard, value)
        except BaseException:
            pass

    # ------------------------------------------------------------------
    # background threads
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                if self.done:
                    return
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _monitor_loop(self) -> None:
        miss_window = (
            self._heartbeat_s
            * HEARTBEAT_MISSES
            * deterministic_jitter("fabric-heartbeat-window", 0)
        )
        while not self._done.wait(MONITOR_TICK_S):
            now = time.monotonic()
            with self._lock:
                for shard, lease in list(self._leases.items()):
                    if now >= lease.deadline:
                        node = self._nodes.get(lease.node)
                        if node is not None:
                            node.leases.discard(shard)
                        del self._leases[shard]
                        self._requeue_locked(
                            shard,
                            f"deadline expired on node {lease.node} "
                            f"(grant {lease.grant})",
                        )
                for node in list(self._nodes.values()):
                    if (
                        not node.lost
                        and node.leases
                        and now - node.last_seen > miss_window
                    ):
                        self._revoke_node_locked(
                            node.node_id,
                            f"missed heartbeats for "
                            f"{now - node.last_seen:.2f}s",
                        )
            self._drain_local_queue()
        self._drain_local_queue()

    def _drain_local_queue(self) -> None:
        while True:
            with self._lock:
                if not self._local_queue:
                    return
                shard = self._local_queue.popleft()
                if shard in self._results:
                    continue
            self.run_local(shard)

    # ------------------------------------------------------------------
    # per-connection protocol
    # ------------------------------------------------------------------
    def _grant(self, sock: socket.socket, node_id: int) -> None:
        with self._lock:
            if self.done:
                send_message(sock, {"type": "drain"})
                return
            while self._pending:
                shard = self._pending.popleft()
                if shard not in self._results:
                    break
            else:
                send_message(
                    sock,
                    {"type": "wait", "poll_s": self._heartbeat_s},
                )
                return
            self._grants[shard] = self._grants.get(shard, 0) + 1
            grant = self._grants[shard]
            lease_s = self._lease_timeout_s * deterministic_jitter(
                "fabric-lease", shard, grant
            )
            lease = _Lease(
                shard=shard,
                node=node_id,
                deadline=time.monotonic() + lease_s,
                grant=grant,
            )
            self._leases[shard] = lease
            node = self._nodes.get(node_id)
            if node is not None:
                node.leases.add(shard)
                node.lost = False
            item_blob = pickle.dumps(self._work[shard], protocol=4)
        send_message(
            sock,
            {
                "type": "lease",
                "shard": shard,
                "lease_s": round(lease_s, 6),
            },
            item_blob,
        )

    def _serve_connection(self, sock: socket.socket) -> None:
        node_id: "int | None" = None
        try:
            while True:
                frame = recv_message(sock)
                if frame is None:
                    break
                header, blob = frame
                kind = header["type"]
                if kind == "hello":
                    if header.get("token") != self._token:
                        send_message(
                            sock,
                            {
                                "type": "reject",
                                "reason": "bad session token",
                            },
                        )
                        break
                    node_id = int(header["node"])
                    with self._lock:
                        self._nodes[node_id] = _Node(
                            node_id=node_id,
                            last_seen=time.monotonic(),
                        )
                    send_message(
                        sock,
                        {
                            "type": "welcome",
                            "node": node_id,
                            "heartbeat_s": self._heartbeat_s,
                            "lease_timeout_s": self._lease_timeout_s,
                        },
                        self._task_blob,
                    )
                elif kind == "heartbeat":
                    with self._lock:
                        node = self._nodes.get(int(header["node"]))
                        if node is not None:
                            node.last_seen = time.monotonic()
                elif kind == "need-work":
                    if node_id is None:
                        raise FabricProtocolError(
                            "need-work before hello"
                        )
                    self._grant(sock, node_id)
                elif kind == "result":
                    shard = int(header["shard"])
                    value = pickle.loads(blob)
                    self._commit(shard, value)
                    send_message(
                        sock, {"type": "committed", "shard": shard}
                    )
                elif kind == "failed":
                    shard = int(header["shard"])
                    self._handle_failure(
                        shard, str(header.get("detail", ""))
                    )
                    send_message(
                        sock, {"type": "noted", "shard": shard}
                    )
                elif kind == "bye":
                    break
                else:
                    raise FabricProtocolError(
                        f"unexpected message type {kind!r}"
                    )
        except (FabricProtocolError, OSError, EOFError):
            pass
        except BaseException:  # pragma: no cover - defensive funnel
            self._fail_fatally(
                FabricError(
                    "coordinator connection handler crashed:\n"
                    + traceback.format_exc()
                )
            )
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - racing close
                pass
            if node_id is not None and not self.done:
                self.revoke_node(node_id, "connection lost")
