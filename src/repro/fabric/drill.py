"""The failover chaos drill behind ``repro fabric drill``.

Three phases, each proving one leg of the fabric's recovery story
against a serial in-memory baseline:

1. **worker SIGKILL** — a Table-2 campaign runs on the fabric while a
   chaos injection delivers ``kill -9`` to the worker node computing
   one of the rows; the coordinator must revoke the lease, respawn a
   node, reassign the shard and render output *byte-identical* to the
   serial baseline, with the failover visible as ``node-loss`` /
   ``lease-revoke`` / ``node-restart`` events in the
   :class:`~repro.runtime.policy.RunReport`;
2. **coordinator restart** — the same campaign is interrupted by a
   deterministic :class:`~repro.errors.CheckpointInterrupted` after the
   first committed shard (the stand-in for killing the coordinator
   process mid-run); a fresh run over the same checkpoint directory
   must replay the committed shard from the replicated journal and
   finish byte-identically;
3. **bench under node kill** — a quick ``run_bench`` row is computed
   on the fabric while its node is killed; every deterministic field
   of the BENCH JSON (cycle counts, Monte-Carlo statistics, exact
   expectations) must match a serial run (timing fields legitimately
   differ, so they are excluded).

The drill writes the rendered serial and fabric Table-2 outputs to
``table2-serial.txt`` / ``table2-fabric.txt`` in its working directory
so CI can ``cmp`` them as files, and its structured outcome (including
the per-phase RunReports) is uploadable as a JSON artifact.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field

from ..errors import CheckpointInterrupted
from ..runtime.chaos import ChaosConfig
from ..runtime.journal import CheckpointJournal, atomic_write_text
from ..runtime.policy import RunPolicy, RunReport
from .runtime import FabricConfig

#: fast drill timing — tight heartbeats so failure detection is quick
DRILL_HEARTBEAT_S = 0.1
DRILL_LEASE_TIMEOUT_S = 20.0


@dataclass
class DrillOutcome:
    """Structured pass/fail record of one drill run."""

    checks: "list[tuple[str, bool, str]]" = field(default_factory=list)
    phase_reports: "dict[str, dict]" = field(default_factory=dict)
    workdir: "str | None" = None

    @property
    def passed(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, bool(ok), detail))

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "checks": [
                {"name": name, "passed": ok, "detail": detail}
                for name, ok, detail in self.checks
            ],
            "phase_reports": self.phase_reports,
        }

    def render(self) -> str:
        lines = [
            "fabric failover drill: "
            + ("PASS" if self.passed else "FAIL")
        ]
        for name, ok, detail in self.checks:
            mark = "ok" if ok else "FAIL"
            line = f"  [{mark:4s}] {name}"
            if detail:
                line += f" — {detail}"
            lines.append(line)
        return "\n".join(lines)


def _fabric_config(nodes: int) -> FabricConfig:
    return FabricConfig(
        nodes=nodes,
        heartbeat_s=DRILL_HEARTBEAT_S,
        lease_timeout_s=DRILL_LEASE_TIMEOUT_S,
    )


def _bench_deterministic(data: dict) -> dict:
    """The deterministic subset of a BENCH document (no timings)."""
    out = {}
    for name, row in data["benchmarks"].items():
        entry = {
            "simulated_cycles": row["simulated_cycles"],
            "mean_cycles": row["monte_carlo"]["mean_cycles"],
            "p95_cycles": row["monte_carlo"]["p95_cycles"],
        }
        exact = row.get("exact_expectation")
        if exact is not None:
            entry["exact_value"] = exact["value"]
        out[name] = entry
    return out


def run_drill(
    *,
    rows: int = 3,
    nodes: int = 2,
    report_path: "str | None" = None,
    keep_dir: "str | None" = None,
) -> DrillOutcome:
    """Run all three failover phases; see the module docstring."""
    from ..benchmarks.registry import table2_benchmarks
    from ..experiments.table2 import run_table2
    from ..perf.bench import run_bench

    rows = max(2, rows)
    entries = list(table2_benchmarks())[:rows]
    outcome = DrillOutcome()
    workdir = keep_dir or tempfile.mkdtemp(prefix="repro-fabric-drill-")
    os.makedirs(workdir, exist_ok=True)
    outcome.workdir = workdir
    try:
        baseline = run_table2(entries=entries).render()
        atomic_write_text(
            os.path.join(workdir, "table2-serial.txt"), baseline + "\n"
        )

        # Phase 1 — SIGKILL a worker node mid-campaign.  The hang on
        # shard 0 keeps the campaign open past the supervisor's next
        # reap tick, so the respawn leg is exercised even when every
        # row computes faster than failure detection.
        kill_dir = os.path.join(workdir, "worker-kill")
        chaos = ChaosConfig(
            node_kill_items=(1,),
            hang_items=(0,),
            hang_s=0.75,
            sentinel_dir=os.path.join(workdir, "sentinels-kill"),
        )
        os.makedirs(chaos.sentinel_dir, exist_ok=True)
        report = RunReport()
        fabric_out = run_table2(
            entries=entries,
            checkpoint=kill_dir,
            policy=RunPolicy(chaos=chaos),
            report=report,
            fabric=_fabric_config(nodes),
        ).render()
        atomic_write_text(
            os.path.join(workdir, "table2-fabric.txt"),
            fabric_out + "\n",
        )
        outcome.phase_reports["worker-kill"] = report.to_dict()
        outcome.check(
            "worker-kill: byte-identical Table 2",
            fabric_out == baseline,
        )
        for kind in ("node-loss", "lease-revoke", "node-restart"):
            outcome.check(
                f"worker-kill: {kind} recorded",
                report.count(kind) >= 1,
                f"{report.count(kind)} event(s)",
            )

        # Phase 2 — coordinator killed after one committed shard,
        # fresh coordinator resumes the same checkpoint directory.
        restart_dir = os.path.join(workdir, "coord-restart")
        report = RunReport()
        interrupted = False
        try:
            run_table2(
                entries=entries,
                checkpoint=CheckpointJournal(
                    restart_dir, max_new_shards=1
                ),
                report=report,
                fabric=_fabric_config(nodes),
            )
        except CheckpointInterrupted:
            interrupted = True
        outcome.check(
            "coordinator-restart: first run interrupted", interrupted
        )
        committed = sum(
            name.endswith(".shard.pkl")
            for name in os.listdir(restart_dir)
        )
        outcome.check(
            "coordinator-restart: shard committed before interrupt",
            committed >= 1,
            f"{committed} shard(s) on disk",
        )
        resumed = run_table2(
            entries=entries,
            checkpoint=restart_dir,
            report=report,
            fabric=_fabric_config(nodes),
        ).render()
        outcome.phase_reports["coordinator-restart"] = report.to_dict()
        outcome.check(
            "coordinator-restart: byte-identical Table 2 after resume",
            resumed == baseline,
        )

        # Phase 3 — BENCH deterministic fields survive a node kill.
        bench_kwargs = dict(
            benchmarks=("diffeq",),
            quick=True,
            trials=30,
            workers=1,
            seed=0,
        )
        serial_bench = _bench_deterministic(
            run_bench(**bench_kwargs).data
        )
        bench_chaos = ChaosConfig(
            node_kill_items=(0,),
            sentinel_dir=os.path.join(workdir, "sentinels-bench"),
        )
        os.makedirs(bench_chaos.sentinel_dir, exist_ok=True)
        report = RunReport()
        fabric_bench = _bench_deterministic(
            run_bench(
                checkpoint_dir=os.path.join(workdir, "bench-ckpt"),
                fabric=_fabric_config(nodes),
                report=report,
                policy=RunPolicy(chaos=bench_chaos),
                **bench_kwargs,
            ).data
        )
        outcome.phase_reports["bench"] = report.to_dict()
        outcome.check(
            "bench: deterministic fields identical under node kill",
            fabric_bench == serial_bench,
            json.dumps(fabric_bench, sort_keys=True),
        )
        outcome.check(
            "bench: node-loss recorded",
            report.count("node-loss") >= 1,
        )
    finally:
        if report_path:
            atomic_write_text(
                report_path,
                json.dumps(outcome.to_dict(), indent=2, sort_keys=True)
                + "\n",
            )
        if keep_dir is None:
            shutil.rmtree(workdir, ignore_errors=True)
            outcome.workdir = None
    return outcome
