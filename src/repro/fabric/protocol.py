"""Versioned, checksummed message framing for the campaign fabric.

One frame carries one message: a small JSON header (type, shard ids,
node ids, timing parameters) plus an optional binary blob (the pickled
work function, item or result).  The layout is::

    MAGIC(4) | header_len(u32 BE) | blob_len(u32 BE) | header | blob

* **versioned** — every header carries ``"v": PROTOCOL_VERSION``; a
  peer speaking another version is rejected before any payload is
  interpreted, so coordinator and workers from different builds fail
  loudly instead of mis-parsing each other;
* **checksummed** — a non-empty blob's SHA-256 travels in the header
  (``blob_sha256``) and is verified on receipt, so a torn or corrupted
  transfer surfaces as :class:`~repro.errors.FabricProtocolError`, not
  as a poisoned shard;
* **bounded** — header and blob lengths are capped, so a garbage
  prefix cannot make the receiver allocate gigabytes.

The blob is a pickle: the fabric link is a *trusted* transport between
processes the operator started (localhost by default), exactly like the
journal's on-disk shards.  Never expose the coordinator socket to an
untrusted network.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct

from ..errors import FabricProtocolError

#: first bytes of every frame; reject foreign traffic immediately
MAGIC = b"RFAB"

#: bump on any incompatible message-shape change
PROTOCOL_VERSION = 1

#: sanity caps (the header is metadata; blobs carry pickled designs)
MAX_HEADER_BYTES = 1 << 20
MAX_BLOB_BYTES = 1 << 30

_PREFIX = struct.Struct(">II")


def send_message(
    sock: socket.socket, header: dict, blob: bytes = b""
) -> None:
    """Serialize and send one frame (header dict + optional blob)."""
    head = dict(header)
    head["v"] = PROTOCOL_VERSION
    if blob:
        head["blob_sha256"] = hashlib.sha256(blob).hexdigest()
    encoded = json.dumps(head, sort_keys=True).encode("utf-8")
    sock.sendall(
        MAGIC + _PREFIX.pack(len(encoded), len(blob)) + encoded + blob
    )


def _recv_exact(
    sock: socket.socket, count: int, *, eof_ok: bool = False
) -> "bytes | None":
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a frame
    boundary (only when ``eof_ok``); raise on EOF mid-frame."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and not chunks:
                return None
            raise FabricProtocolError(
                f"connection closed mid-frame ({remaining} of {count} "
                f"byte(s) outstanding)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket,
) -> "tuple[dict, bytes] | None":
    """Receive one frame; ``None`` when the peer closed cleanly.

    Verifies magic, version, length caps and the blob checksum; any
    violation raises :class:`~repro.errors.FabricProtocolError`.
    """
    prefix = _recv_exact(sock, len(MAGIC) + _PREFIX.size, eof_ok=True)
    if prefix is None:
        return None
    if prefix[: len(MAGIC)] != MAGIC:
        raise FabricProtocolError(
            f"bad frame magic {prefix[:len(MAGIC)]!r}; peer is not a "
            f"repro fabric endpoint"
        )
    head_len, blob_len = _PREFIX.unpack(prefix[len(MAGIC):])
    if head_len > MAX_HEADER_BYTES or blob_len > MAX_BLOB_BYTES:
        raise FabricProtocolError(
            f"oversized frame (header {head_len} B, blob {blob_len} B)"
        )
    try:
        header = json.loads(_recv_exact(sock, head_len))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FabricProtocolError(
            f"unparseable frame header: {exc}"
        ) from exc
    if not isinstance(header, dict) or "type" not in header:
        raise FabricProtocolError(
            "frame header is not a typed message object"
        )
    if header.get("v") != PROTOCOL_VERSION:
        raise FabricProtocolError(
            f"protocol version mismatch: peer speaks "
            f"{header.get('v')!r}, this build speaks "
            f"{PROTOCOL_VERSION}"
        )
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    if blob:
        digest = hashlib.sha256(blob).hexdigest()
        if digest != header.get("blob_sha256"):
            raise FabricProtocolError(
                f"blob checksum mismatch on {header['type']!r} "
                f"message (got {digest[:12]}…, header claims "
                f"{str(header.get('blob_sha256'))[:12]}…)"
            )
    return header, blob
