"""Distributed campaign fabric: coordinator/worker shard execution.

The fabric distributes the missing shards of a checkpointed campaign
across worker *processes* (nodes) over a small versioned TCP protocol,
journaling every result through a primary+backup replicated checkpoint
before acknowledging it.  Failure handling is the point: dead, hung,
partitioned or chaos-killed nodes have their shard leases revoked and
reassigned, and the recovered run's output is byte-identical to an
uninterrupted serial run.

Layers (each importable on its own):

* :mod:`~repro.fabric.protocol` — framed, versioned, checksummed
  messages;
* :mod:`~repro.fabric.replica` — the write-ahead replicated journal;
* :mod:`~repro.fabric.coordinator` — shard leases, heartbeats,
  failover;
* :mod:`~repro.fabric.worker` — the node loop (lease → compute →
  report);
* :mod:`~repro.fabric.runtime` — :func:`~repro.fabric.runtime.
  fabric_map`, the driver-facing entry point wired into
  :func:`~repro.runtime.journal.checkpointed_map` via ``fabric=``;
* :mod:`~repro.fabric.drill` — the failover chaos drill behind
  ``repro fabric drill`` and the CI fabric-chaos-smoke job.
"""

from .coordinator import Coordinator
from .protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    recv_message,
    send_message,
)
from .replica import (
    BACKUP_SUFFIX,
    ReplicatedJournal,
    default_backup_path,
)
from .runtime import (
    STATUS_FILE,
    FabricConfig,
    fabric_map,
    replicated_journal_for,
)
from .worker import connect_and_serve

__all__ = [
    "BACKUP_SUFFIX",
    "Coordinator",
    "FabricConfig",
    "MAGIC",
    "PROTOCOL_VERSION",
    "ReplicatedJournal",
    "STATUS_FILE",
    "connect_and_serve",
    "default_backup_path",
    "fabric_map",
    "recv_message",
    "replicated_journal_for",
    "send_message",
]
