"""Drive one checkpointed campaign across coordinator + worker nodes.

:func:`fabric_map` is the fabric's answer to
:func:`~repro.runtime.journal.checkpointed_map`: same signature shape,
same run keys, same shard bytes — a serial run, a ``-j`` pool run and a
fabric run all resume each other's checkpoint directories and render
byte-identical output.  What changes is *where* shards are computed:

1. replay every shard the :class:`~repro.fabric.replica.
   ReplicatedJournal` already holds (repairing whichever copy lost a
   shard);
2. start a :class:`~repro.fabric.coordinator.Coordinator` for the
   missing shards and publish its address + session token in
   ``fabric.json`` inside the checkpoint directory (that is what
   ``repro fabric worker --join DIR`` reads);
3. spawn ``nodes`` worker processes (``python -m repro fabric
   worker``) and supervise them: a node that dies is revoked at the
   coordinator and respawned under the same node id while the restart
   budget lasts (``node-restart`` events);
4. when no worker nodes remain and no restarts are left, the
   coordinator absorbs the queue and finishes in-process
   (``serial-degrade``) — the fabric degrades, it does not deadlock.

A :class:`~repro.errors.CheckpointInterrupted` raised by the primary
journal mid-commit propagates out exactly as it does from
``checkpointed_map`` — that is the deterministic stand-in for a
coordinator kill, and rerunning the same call resumes byte-identically.
"""

from __future__ import annotations

import json
import os
import secrets
import subprocess
import sys
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from ..errors import CheckpointError, SimulationError
from ..perf.engine import _is_picklable, _warn_serial_fallback
from ..runtime.journal import (
    CheckpointJournal,
    atomic_write_text,
    resolve_journal,
)
from ..runtime.policy import (
    RunPolicy,
    RunReport,
    current_report,
    record_event,
)
from .coordinator import Coordinator
from .replica import ReplicatedJournal, default_backup_path

#: name of the coordinator-address file inside the checkpoint directory
STATUS_FILE = "fabric.json"


@dataclass(frozen=True)
class FabricConfig:
    """Topology and timing of one fabric run.

    ``nodes`` worker processes are spawned on localhost; ``port=0``
    lets the OS pick a free coordinator port.  ``backup_dir`` overrides
    the replicated journal's backup directory (default: the primary
    checkpoint directory plus ``-replica``).  ``max_node_restarts``
    caps respawns of dead worker nodes across the whole run (``None``
    means twice the node count); once spent, remaining shards finish in
    the coordinator process.
    """

    nodes: int = 2
    heartbeat_s: float = 0.25
    lease_timeout_s: float = 30.0
    bind_host: str = "127.0.0.1"
    port: int = 0
    backup_dir: "str | None" = None
    max_node_restarts: "int | None" = None
    drain_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise SimulationError(
                f"a fabric needs at least one worker node, got "
                f"{self.nodes}"
            )
        if self.heartbeat_s <= 0 or self.lease_timeout_s <= 0:
            raise SimulationError(
                "heartbeat_s and lease_timeout_s must be positive"
            )
        if (
            self.max_node_restarts is not None
            and self.max_node_restarts < 0
        ):
            raise SimulationError(
                f"max_node_restarts must be >= 0, got "
                f"{self.max_node_restarts}"
            )

    def restart_budget(self) -> int:
        if self.max_node_restarts is None:
            return 2 * self.nodes
        return self.max_node_restarts


def _spawn_worker(
    host: str, port: int, token: str, node_id: int
) -> subprocess.Popen:
    """Start one worker node process joined to the coordinator."""
    import repro

    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "fabric",
            "worker",
            "--connect",
            f"{host}:{port}",
            "--token",
            token,
            "--node",
            str(node_id),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
    )


def _shutdown_workers(
    procs: "dict[int, subprocess.Popen]", grace_s: float
) -> None:
    """Reap drained workers; escalate to SIGTERM/SIGKILL past grace."""
    deadline = time.monotonic() + grace_s
    for proc in procs.values():
        remaining = max(deadline - time.monotonic(), 0.1)
        try:
            proc.wait(timeout=remaining)
            continue
        except subprocess.TimeoutExpired:
            proc.terminate()
        try:
            proc.wait(timeout=1.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def replicated_journal_for(
    checkpoint: "CheckpointJournal | str",
    *,
    backup_dir: "str | None" = None,
    report: "RunReport | None" = None,
) -> ReplicatedJournal:
    """The primary+backup journal pair for a checkpoint directory."""
    journal = resolve_journal(checkpoint)
    if journal.report is None:
        journal.report = report
    backup = CheckpointJournal(
        backup_dir or default_backup_path(journal.path), report=report
    )
    return ReplicatedJournal(journal, backup, report=report)


def fabric_map(
    fn: Callable,
    items: Iterable,
    *,
    run_key: str,
    checkpoint: "CheckpointJournal | str | None",
    config: "FabricConfig | None" = None,
    policy: "RunPolicy | None" = None,
    report: "RunReport | None" = None,
) -> list:
    """Order-preserving checkpointed map over fabric worker nodes.

    Returns the same list ``checkpointed_map`` (and a plain serial
    loop) would; every computed shard is committed to the replicated
    journal before the worker that produced it is acknowledged.
    """
    if config is None:
        config = FabricConfig()
    if checkpoint is None:
        raise CheckpointError(
            "the campaign fabric requires a checkpoint directory: the "
            "replicated journal is its write-ahead commit log"
        )
    if report is None:
        report = current_report()
    replicated = replicated_journal_for(
        checkpoint, backup_dir=config.backup_dir, report=report
    )
    journal = replicated.primary

    work = list(items)
    keys = [
        replicated.key(run_key, index) for index in range(len(work))
    ]
    results: list = [None] * len(work)
    missing: "dict[int, object]" = {}
    for index, key in enumerate(keys):
        found, value = replicated.get(key)
        if found:
            results[index] = value
        else:
            missing[index] = work[index]
    if not missing:
        return results

    first = next(iter(missing.values()))
    if not (_is_picklable(fn) and _is_picklable(first)):
        # Nothing unpicklable can cross the fabric wire; keep the
        # result contract by finishing in-process.
        _warn_serial_fallback(fn, first, report)
        for index in sorted(missing):
            value = fn(missing[index])
            replicated.put(keys[index], value)
            results[index] = value
        return results

    token = secrets.token_hex(16)
    coordinator = Coordinator(
        fn,
        missing,
        keys={index: keys[index] for index in missing},
        journal=replicated,
        policy=policy,
        report=report,
        token=token,
        bind_host=config.bind_host,
        port=config.port,
        heartbeat_s=config.heartbeat_s,
        lease_timeout_s=config.lease_timeout_s,
    )
    host, port = coordinator.start()
    status_path = os.path.join(journal.path, STATUS_FILE)
    atomic_write_text(
        status_path,
        json.dumps(
            {
                "address": {"host": host, "port": port},
                "token": token,
                "pid": os.getpid(),
                "nodes": config.nodes,
                "run_key": run_key,
                "shards_total": len(work),
                "shards_missing": len(missing),
                "backup": replicated.backup.path,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )
    procs: "dict[int, subprocess.Popen]" = {}
    restarts_left = config.restart_budget()
    try:
        for node_id in range(config.nodes):
            procs[node_id] = _spawn_worker(host, port, token, node_id)
        while not coordinator.wait(0.05):
            for node_id, proc in list(procs.items()):
                code = proc.poll()
                if code is None:
                    continue
                del procs[node_id]
                if coordinator.done or code == 0:
                    continue
                coordinator.revoke_node(
                    node_id, f"process exited with code {code}"
                )
                if restarts_left > 0:
                    restarts_left -= 1
                    record_event(
                        report,
                        "node-restart",
                        f"respawned worker node {node_id} after exit "
                        f"code {code} ({restarts_left} restart(s) "
                        f"left in budget)",
                    )
                    procs[node_id] = _spawn_worker(
                        host, port, token, node_id
                    )
            if not procs and not coordinator.done:
                coordinator.absorb_pending()
    finally:
        coordinator.close()
        _shutdown_workers(procs, config.drain_grace_s)
        try:
            os.unlink(status_path)
        except OSError:
            pass
    computed = coordinator.results()
    for index, value in computed.items():
        results[index] = value
    return results
