"""The fabric worker node: lease, compute, report, heartbeat.

A worker node is one OS process (usually spawned by
:func:`~repro.fabric.runtime.fabric_map`, but ``repro fabric worker``
can join a coordinator from anywhere on the same host).  Its life:

1. connect and ``hello`` with the session token; the ``welcome`` reply
   carries the pickled work function and chaos configuration;
2. start a background heartbeat thread — one-way ``heartbeat``
   messages at the coordinator-chosen interval (deterministically
   jittered per node so a fleet never beats in lockstep);
3. loop: ``need-work`` → ``lease`` (compute, report the ``result``,
   wait for the write-ahead ``committed`` ack), ``wait`` (sleep and
   ask again) or ``drain`` (send ``bye`` and exit 0).

Chaos injection happens *here*, in the node that must die:
:func:`~repro.runtime.chaos.chaos_apply` runs before each shard (crash
/ SIGKILL / fail / hang), and a claimed partition severs the
connection *after* computing a shard but before reporting it —
the cruellest loss, which the coordinator must recover from by
recomputing a shard that was already finished somewhere.

A worker exits non-zero on any protocol or connection error *while
holding a lease*; the runtime's node supervisor decides whether to
respawn it.  Losing the coordinator while idle (between leases) is a
clean drain — the campaign ended before a graceful ``drain`` message
could arrive, and the node has nothing to hand back.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
import traceback

from ..errors import FabricProtocolError
from ..perf.engine import deterministic_jitter
from ..runtime.chaos import chaos_apply
from .protocol import recv_message, send_message

#: worker exit codes the node supervisor can tell apart
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_REJECTED = 2
EXIT_PARTITIONED = 3


class _Heartbeat(threading.Thread):
    """One-way liveness beacon sharing the worker's socket.

    Sends are serialized with the work loop through ``send_lock``;
    the worker never expects a reply to a heartbeat, so the receive
    stream stays a clean request/response sequence for the work loop.
    """

    def __init__(
        self,
        sock: socket.socket,
        send_lock: threading.Lock,
        node_id: int,
        interval_s: float,
    ) -> None:
        super().__init__(daemon=True)
        self._sock = sock
        self._send_lock = send_lock
        self._node_id = node_id
        self._interval_s = interval_s
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                with self._send_lock:
                    send_message(
                        self._sock,
                        {"type": "heartbeat", "node": self._node_id},
                    )
            except OSError:
                return


def _request(
    sock: socket.socket,
    send_lock: threading.Lock,
    header: dict,
    blob: bytes = b"",
) -> "tuple[dict, bytes]":
    """Send one request and block for its reply."""
    with send_lock:
        send_message(sock, header, blob)
    frame = recv_message(sock)
    if frame is None:
        raise FabricProtocolError(
            "coordinator closed the connection mid-conversation"
        )
    return frame


def connect_and_serve(
    host: str,
    port: int,
    *,
    token: str,
    node_id: int,
    connect_timeout_s: float = 10.0,
) -> int:
    """Join a coordinator and work until drained.

    Returns a process exit code (``EXIT_OK`` on a clean drain); the
    ``repro fabric worker`` subcommand passes it straight to
    ``sys.exit``.
    """
    sock = socket.create_connection(
        (host, port), timeout=connect_timeout_s
    )
    sock.settimeout(None)
    send_lock = threading.Lock()
    heartbeat: "_Heartbeat | None" = None
    try:
        header, blob = _request(
            sock,
            send_lock,
            {"type": "hello", "token": token, "node": node_id},
        )
        if header["type"] == "reject":
            print(
                f"fabric worker {node_id}: rejected: "
                f"{header.get('reason', 'unknown reason')}",
                flush=True,
            )
            return EXIT_REJECTED
        if header["type"] != "welcome":
            raise FabricProtocolError(
                f"expected welcome, got {header['type']!r}"
            )
        fn, chaos = pickle.loads(blob)
        heartbeat_s = float(header["heartbeat_s"])
        interval_s = heartbeat_s * deterministic_jitter(
            "fabric-heartbeat", node_id
        )
        if chaos is not None:
            interval_s *= chaos.heartbeat_scale(node_id)
        heartbeat = _Heartbeat(sock, send_lock, node_id, interval_s)
        heartbeat.start()

        while True:
            try:
                header, blob = _request(
                    sock,
                    send_lock,
                    {"type": "need-work", "node": node_id},
                )
            except (FabricProtocolError, OSError):
                # The coordinator vanished while this node held no
                # lease: the campaign ended (drained, finished, or
                # the coordinator died) before a graceful ``drain``
                # could arrive.  Nothing was lost, so this is a clean
                # exit — an operator-adopted node (``--join``) must
                # not report an error because the run finished first.
                print(
                    f"fabric worker {node_id}: coordinator gone "
                    f"while idle; draining",
                    flush=True,
                )
                return EXIT_OK
            kind = header["type"]
            if kind == "drain":
                with send_lock:
                    send_message(
                        sock, {"type": "bye", "node": node_id}
                    )
                return EXIT_OK
            if kind == "wait":
                time.sleep(float(header.get("poll_s", 0.05)))
                continue
            if kind != "lease":
                raise FabricProtocolError(
                    f"expected lease/wait/drain, got {kind!r}"
                )
            shard = int(header["shard"])
            item = pickle.loads(blob)
            try:
                chaos_apply(chaos, shard)
                value = fn(item)
            except BaseException as exc:
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                reply, _ = _request(
                    sock,
                    send_lock,
                    {
                        "type": "failed",
                        "node": node_id,
                        "shard": shard,
                        "detail": detail,
                    },
                )
                if reply["type"] != "noted":
                    raise FabricProtocolError(
                        f"expected noted, got {reply['type']!r}"
                    ) from None
                continue
            if chaos is not None and chaos.claim_partition(shard):
                # Partition injection: the shard is computed but the
                # connection dies before the result crosses the wire.
                try:
                    sock.close()
                finally:
                    os._exit(EXIT_PARTITIONED)
            reply, _ = _request(
                sock,
                send_lock,
                {"type": "result", "node": node_id, "shard": shard},
                pickle.dumps(value, protocol=4),
            )
            if reply["type"] != "committed":
                raise FabricProtocolError(
                    f"expected committed, got {reply['type']!r}"
                )
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        try:
            sock.close()
        except OSError:  # pragma: no cover - racing close
            pass
