"""Primary/backup replication for checkpoint journals.

A single :class:`~repro.runtime.journal.CheckpointJournal` already
survives torn writes (atomic publish) and bit rot (checksum +
quarantine), but a quarantined shard is *recomputed* — acceptable for
one cheap trial, wasteful for an expensive campaign row, and fatal for
the fabric's write-ahead ack protocol, which promises a worker that an
acknowledged shard will never be asked for again.

:class:`ReplicatedJournal` keeps two journal directories in lockstep:

* **write-ahead commit** — ``put`` persists the shard to the primary
  *and* the backup (each with its own fsync + atomic rename) before
  returning; the fabric coordinator only acknowledges a worker's
  result after ``put`` returns, so an acked shard is durable in both
  copies;
* **self-healing reads** — ``get`` verifies both copies; a missing or
  corrupt copy is restored byte-for-byte from its verified twin (a
  ``journal-repair`` event), and only when *both* copies fail does the
  shard report missing and get recomputed;
* **byte-identical recovery** — repairs copy the original checksummed
  shard bytes, never re-encode, so a resumed run replays exactly the
  values an uninterrupted run would have produced.

A plain single-directory checkpoint from an earlier serial run can be
adopted directly: the backup starts empty and is populated by repair
on first read.
"""

from __future__ import annotations

from ..errors import CheckpointError
from ..runtime.journal import CheckpointJournal
from ..runtime.policy import RunReport, record_event

#: suffix appended to a primary journal path to derive its default
#: backup directory
BACKUP_SUFFIX = "-replica"


def default_backup_path(primary_path: str) -> str:
    """Backup directory derived from a primary journal directory."""
    return primary_path.rstrip("/\\") + BACKUP_SUFFIX


class ReplicatedJournal:
    """Two checkpoint journals kept consistent by repair-on-read.

    ``repaired`` counts shards restored from their twin this run
    (each also recorded as a ``journal-repair`` recovery event).
    """

    def __init__(
        self,
        primary: CheckpointJournal,
        backup: CheckpointJournal,
        *,
        report: "RunReport | None" = None,
    ) -> None:
        if primary.path == backup.path:
            raise CheckpointError(
                "a replicated journal needs two distinct directories, "
                f"got {primary.path!r} twice"
            )
        self.primary = primary
        self.backup = backup
        self.report = report
        if primary.report is None:
            primary.report = report
        if backup.report is None:
            backup.report = report
        self.repaired = 0

    @staticmethod
    def key(run_key: str, shard: object) -> str:
        return CheckpointJournal.key(run_key, shard)

    def _repair(
        self,
        dest: CheckpointJournal,
        src: CheckpointJournal,
        key: str,
    ) -> None:
        """Copy the verified shard bytes of ``key`` from ``src``."""
        try:
            with open(src.shard_file(key), "rb") as handle:
                blob = handle.read()
        except OSError:  # pragma: no cover - racing cleanup
            return
        dest.restore(key, blob)
        self.repaired += 1
        record_event(
            self.report,
            "journal-repair",
            f"shard {key[:12]}… restored into {dest.path} from its "
            f"replica in {src.path}",
        )

    def get(self, key: str) -> "tuple[bool, object]":
        """``(True, value)`` when either copy verifies, else
        ``(False, None)``.

        Verifies both copies; whichever is missing or corrupt (the
        journal quarantines corrupt files itself) is restored from the
        verified twin.  Only a shard lost in *both* directories is
        reported missing.
        """
        ok_primary, value = self.primary.get(key)
        ok_backup, backup_value = self.backup.get(key)
        if ok_primary:
            if not ok_backup:
                self._repair(self.backup, self.primary, key)
            return True, value
        if ok_backup:
            self._repair(self.primary, self.backup, key)
            return True, backup_value
        return False, None

    def put(self, key: str, value: object) -> None:
        """Commit one shard to both copies (primary first).

        The caller may acknowledge the shard as durable only after
        this returns: a crash between the two writes leaves the
        primary ahead, which repair-on-read reconciles on resume.
        """
        self.primary.put(key, value)
        self.backup.put(key, value)

    def counters(self) -> dict:
        """Structured counters for status displays and drills."""
        return {
            "primary": {
                "path": self.primary.path,
                "new_shards": self.primary.new_shards,
                "replayed": self.primary.replayed,
                "quarantined": self.primary.quarantined,
            },
            "backup": {
                "path": self.backup.path,
                "new_shards": self.backup.new_shards,
                "replayed": self.backup.replayed,
                "quarantined": self.backup.quarantined,
            },
            "repaired": self.repaired,
        }
