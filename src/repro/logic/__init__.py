"""Two-level boolean minimization and area modelling."""

from .area import (
    AREA_PER_FLIP_FLOP,
    AREA_PER_LITERAL,
    AREA_PER_OR_INPUT,
    FunctionArea,
    LogicBlockArea,
    cover_area,
    function_area,
)
from .quine_mccluskey import (
    EXACT_WIDTH_LIMIT,
    minimize,
    prime_implicants,
    verify_cover,
)
from .terms import BooleanFunction, Cube

__all__ = [
    "AREA_PER_FLIP_FLOP",
    "AREA_PER_LITERAL",
    "AREA_PER_OR_INPUT",
    "BooleanFunction",
    "Cube",
    "EXACT_WIDTH_LIMIT",
    "FunctionArea",
    "LogicBlockArea",
    "cover_area",
    "function_area",
    "minimize",
    "prime_implicants",
    "verify_cover",
]
