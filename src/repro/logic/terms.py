"""Cubes and single-output boolean functions for two-level minimization.

The area numbers of the paper's Table 1 come from synthesizing controller
FSMs to gates.  We reproduce the *relative* area story with a two-level
model: every next-state bit and output signal of an encoded FSM is a
boolean function, minimized to a sum-of-products cover whose literal count
is the combinational area contribution.  This module provides the cube
algebra that minimization runs on.

A cube over ``n`` variables is a pair of bit masks ``(care, value)``:
variable ``i`` is specified iff bit ``i`` of ``care`` is set, in which case
its required value is bit ``i`` of ``value``.  The empty-care cube is the
tautology.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from ..errors import LogicError


@dataclass(frozen=True, order=True)
class Cube:
    """A product term (conjunction of literals) over ``width`` variables."""

    width: int
    care: int
    value: int

    def __post_init__(self) -> None:
        if self.width < 0:
            raise LogicError("cube width must be >= 0")
        mask = (1 << self.width) - 1
        if self.care & ~mask:
            raise LogicError("care mask exceeds cube width")
        if self.value & ~self.care:
            raise LogicError("value bits set outside the care mask")

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse ``"1-0"`` style cube text (index 0 = leftmost character)."""
        care = 0
        value = 0
        for i, ch in enumerate(text):
            if ch == "-":
                continue
            if ch not in "01":
                raise LogicError(f"bad cube character {ch!r} in {text!r}")
            care |= 1 << i
            if ch == "1":
                value |= 1 << i
        return cls(width=len(text), care=care, value=value)

    @classmethod
    def minterm(cls, width: int, index: int) -> "Cube":
        """The fully specified cube equal to one minterm."""
        mask = (1 << width) - 1
        if index & ~mask:
            raise LogicError(f"minterm {index} out of range for width {width}")
        return cls(width=width, care=mask, value=index)

    # -- algebra -----------------------------------------------------------
    @property
    def num_literals(self) -> int:
        """Number of literals in the product term."""
        return bin(self.care).count("1")

    def contains(self, minterm: int) -> bool:
        """Whether a fully specified input point satisfies this cube."""
        return (minterm & self.care) == self.value

    def covers(self, other: "Cube") -> bool:
        """Whether every point of ``other`` satisfies this cube."""
        if self.width != other.width:
            raise LogicError("cube width mismatch")
        if self.care & ~other.care:
            return False  # other leaves free a variable we constrain
        return (other.value & self.care) == self.value

    def intersects(self, other: "Cube") -> bool:
        """Whether the two cubes share at least one point."""
        if self.width != other.width:
            raise LogicError("cube width mismatch")
        common = self.care & other.care
        return (self.value & common) == (other.value & common)

    def merge_distance_one(self, other: "Cube") -> "Cube | None":
        """Combine two cubes differing in exactly one specified bit.

        The Quine–McCluskey combination step: identical care masks and
        values differing in one bit merge into a cube with that bit freed.
        Returns ``None`` when the cubes do not combine.
        """
        if self.width != other.width or self.care != other.care:
            return None
        diff = self.value ^ other.value
        if diff == 0 or diff & (diff - 1):
            return None  # zero or more than one differing bit
        return Cube(
            width=self.width, care=self.care & ~diff, value=self.value & ~diff
        )

    def expand(self) -> Iterable[int]:
        """Yield every minterm index covered by the cube."""
        free_bits = [
            i for i in range(self.width) if not (self.care >> i) & 1
        ]
        for combo in range(1 << len(free_bits)):
            point = self.value
            for j, bit in enumerate(free_bits):
                if (combo >> j) & 1:
                    point |= 1 << bit
            yield point

    def to_string(self) -> str:
        """Render as ``"1-0"`` style text (index 0 leftmost)."""
        chars = []
        for i in range(self.width):
            if not (self.care >> i) & 1:
                chars.append("-")
            elif (self.value >> i) & 1:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def __str__(self) -> str:
        return self.to_string()


@dataclass(frozen=True)
class BooleanFunction:
    """An incompletely specified single-output function.

    ``ones`` are required-1 minterms, ``dont_cares`` may be either value;
    everything else is required 0.  ``width`` is the input count.
    """

    width: int
    ones: frozenset[int]
    dont_cares: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        limit = 1 << self.width
        for point in self.ones | self.dont_cares:
            if not 0 <= point < limit:
                raise LogicError(
                    f"minterm {point} out of range for width {self.width}"
                )
        if self.ones & self.dont_cares:
            raise LogicError("minterm marked both one and don't-care")

    @property
    def is_constant_zero(self) -> bool:
        return not self.ones

    @property
    def is_constant_one(self) -> bool:
        return len(self.ones | self.dont_cares) == 1 << self.width and bool(
            self.ones
        )

    def value_at(self, minterm: int) -> "bool | None":
        """Required value at a point (``None`` for don't-care)."""
        if minterm in self.ones:
            return True
        if minterm in self.dont_cares:
            return None
        return False
