"""Quine–McCluskey prime-implicant generation and greedy cover selection.

Exact prime generation followed by essential-prime extraction and a greedy
set-cover heuristic for the cyclic core — the standard recipe for the
function sizes controller synthesis produces (a dozen input variables or
fewer).  Functions wider than :data:`EXACT_WIDTH_LIMIT` fall back to a
single-cube-per-minterm cover with merged adjacent pairs, keeping area
reports finite for stress-test inputs.
"""

from __future__ import annotations

from .terms import BooleanFunction, Cube

#: Above this input width, exact prime generation is skipped.
EXACT_WIDTH_LIMIT = 14


def prime_implicants(function: BooleanFunction) -> frozenset[Cube]:
    """All prime implicants of ``ones ∪ dont_cares``.

    Classic iterated pairwise combination: start from the minterm cubes,
    repeatedly merge distance-one pairs, and keep every cube that never
    merged.
    """
    current = {
        Cube.minterm(function.width, m)
        for m in function.ones | function.dont_cares
    }
    primes: set[Cube] = set()
    while current:
        merged: set[Cube] = set()
        used: set[Cube] = set()
        # Group by popcount of value for the classic adjacency pruning.
        by_ones: dict[int, list[Cube]] = {}
        for cube in current:
            by_ones.setdefault(bin(cube.value).count("1"), []).append(cube)
        for count, group in sorted(by_ones.items()):
            for cube in group:
                for other in by_ones.get(count + 1, ()):
                    combined = cube.merge_distance_one(other)
                    if combined is not None:
                        merged.add(combined)
                        used.add(cube)
                        used.add(other)
        primes |= current - used
        current = merged
    return frozenset(primes)


def _greedy_cover(
    required: frozenset[int], candidates: frozenset[Cube]
) -> list[Cube]:
    """Essential primes first, then greedy max-coverage selection."""
    remaining = set(required)
    cover: list[Cube] = []

    coverage = {
        cube: frozenset(m for m in required if cube.contains(m))
        for cube in candidates
    }
    # Essential primes: the only cube covering some required minterm.
    for minterm in sorted(required):
        owners = [c for c in candidates if minterm in coverage[c]]
        if len(owners) == 1 and owners[0] not in cover:
            cover.append(owners[0])
            remaining -= coverage[owners[0]]
    # Greedy on the rest: most new minterms, fewest literals, stable order.
    while remaining:
        best = max(
            candidates,
            key=lambda c: (
                len(coverage[c] & remaining),
                -c.num_literals,
                c.to_string(),
            ),
        )
        gained = coverage[best] & remaining
        if not gained:
            raise AssertionError("greedy cover stuck; primes incomplete")
        cover.append(best)
        remaining -= gained
    return cover


def minimize(function: BooleanFunction) -> tuple[Cube, ...]:
    """Minimized sum-of-products cover of a boolean function.

    Returns a tuple of cubes covering every required-1 minterm, never
    covering a required-0 minterm, deterministically ordered.  Constant
    functions return ``()`` (zero) or a single tautology cube (one).
    """
    if function.is_constant_zero:
        return ()
    if function.is_constant_one:
        return (Cube(width=function.width, care=0, value=0),)
    if function.width > EXACT_WIDTH_LIMIT:
        return _approximate_cover(function)
    primes = prime_implicants(function)
    cover = _greedy_cover(function.ones, primes)
    return tuple(sorted(cover))


def _approximate_cover(function: BooleanFunction) -> tuple[Cube, ...]:
    """Cheap cover for very wide functions: single merge pass on minterms."""
    cubes = [Cube.minterm(function.width, m) for m in sorted(function.ones)]
    merged = True
    while merged:
        merged = False
        result: list[Cube] = []
        used = [False] * len(cubes)
        for i, cube in enumerate(cubes):
            if used[i]:
                continue
            partner = None
            for j in range(i + 1, len(cubes)):
                if used[j]:
                    continue
                combined = cube.merge_distance_one(cubes[j])
                if combined is not None:
                    partner = (j, combined)
                    break
            if partner is None:
                result.append(cube)
            else:
                j, combined = partner
                used[j] = True
                result.append(combined)
                merged = True
        cubes = result
    return tuple(sorted(set(cubes)))


def verify_cover(
    function: BooleanFunction, cover: tuple[Cube, ...]
) -> None:
    """Assert a cover is functionally correct (test helper).

    Every required-1 minterm must be covered and no required-0 minterm may
    be covered; don't-cares are free.
    """
    for minterm in range(1 << function.width):
        covered = any(c.contains(minterm) for c in cover)
        required = function.value_at(minterm)
        if required is True and not covered:
            raise AssertionError(f"minterm {minterm} uncovered")
        if required is False and covered:
            raise AssertionError(f"minterm {minterm} wrongly covered")
