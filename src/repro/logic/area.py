"""Two-level area model for synthesized logic.

Mirrors the unit convention visible in the paper's Table 1 (sequential
area divides evenly by flip-flop count, 11 units per FF): combinational
area is counted in *literals* — one unit per AND-plane literal plus one per
OR-plane input — and sequential area is a fixed cost per flip-flop.  The
absolute scale is arbitrary; all Table 1 claims are relative.
"""

from __future__ import annotations

from dataclasses import dataclass

from .quine_mccluskey import minimize
from .terms import BooleanFunction, Cube

#: Sequential area units per flip-flop (the paper's visible convention).
AREA_PER_FLIP_FLOP = 11.0

#: Combinational area units per product-term literal.
AREA_PER_LITERAL = 1.0

#: Combinational area units per OR-plane input (one per product term
#: feeding a multi-term output).
AREA_PER_OR_INPUT = 1.0


@dataclass(frozen=True)
class FunctionArea:
    """Area of one minimized single-output function."""

    name: str
    num_terms: int
    num_literals: int

    @property
    def combinational_area(self) -> float:
        """Literal cost plus OR-plane cost (absent for 0/1-term covers)."""
        or_inputs = self.num_terms if self.num_terms > 1 else 0
        return (
            AREA_PER_LITERAL * self.num_literals
            + AREA_PER_OR_INPUT * or_inputs
        )


def function_area(name: str, function: BooleanFunction) -> FunctionArea:
    """Minimize a function and report its two-level area."""
    cover = minimize(function)
    return cover_area(name, cover)


def cover_area(name: str, cover: tuple[Cube, ...]) -> FunctionArea:
    """Area of an already minimized cover."""
    return FunctionArea(
        name=name,
        num_terms=len(cover),
        num_literals=sum(c.num_literals for c in cover),
    )


@dataclass(frozen=True)
class LogicBlockArea:
    """Aggregate area of a block: many functions plus its flip-flops."""

    name: str
    functions: tuple[FunctionArea, ...]
    num_flip_flops: int

    @property
    def combinational_area(self) -> float:
        return sum(f.combinational_area for f in self.functions)

    @property
    def sequential_area(self) -> float:
        return AREA_PER_FLIP_FLOP * self.num_flip_flops

    @property
    def total_area(self) -> float:
        return self.combinational_area + self.sequential_area

    def merged_with(self, other: "LogicBlockArea", name: str) -> "LogicBlockArea":
        """Sum two blocks (used to aggregate a distributed control unit)."""
        return LogicBlockArea(
            name=name,
            functions=self.functions + other.functions,
            num_flip_flops=self.num_flip_flops + other.num_flip_flops,
        )

    def describe(self) -> str:
        return (
            f"{self.name}: comb {self.combinational_area:.0f} / "
            f"seq {self.sequential_area:.0f} "
            f"({self.num_flip_flops} FFs, {len(self.functions)} functions)"
        )
