"""System-level area rollup: controllers plus datapath structure.

Table 1 compares *controller* areas; a designer also wants them in
context: how much of the whole system does the control unit cost next to
the datapath's registers, operand multiplexers and functional units?
This module combines the two-level controller area model with structural
datapath costs (same literal/FF units as :mod:`repro.logic.area`):

* a result register costs ``width`` flip-flops,
* an n-input operand mux costs ``width · n`` literals (one AND-OR slice
  per bit per source) when n > 1,
* functional units are reported separately in unit-equivalents (their
  gate-level area is technology data, not something a literal model
  should invent).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..control.distributed import DistributedControlUnit
from ..logic.area import AREA_PER_FLIP_FLOP
from .datapath import DatapathStatistics, datapath_statistics


@dataclass(frozen=True)
class SystemAreaReport:
    """Controller-vs-datapath area breakdown for one design."""

    benchmark: str
    width: int
    controller_combinational: float
    controller_sequential: float
    datapath_register_sequential: float
    datapath_mux_combinational: float
    num_units: int

    @property
    def controller_total(self) -> float:
        return self.controller_combinational + self.controller_sequential

    @property
    def datapath_total(self) -> float:
        """Registers + muxes (functional units excluded, see module doc)."""
        return (
            self.datapath_register_sequential
            + self.datapath_mux_combinational
        )

    @property
    def controller_fraction(self) -> float:
        """Control unit share of the modelled system area."""
        total = self.controller_total + self.datapath_total
        return self.controller_total / total if total else 0.0

    def render(self) -> str:
        return (
            f"system area for {self.benchmark} ({self.width}-bit "
            f"datapath):\n"
            f"  control   : {self.controller_combinational:.0f} comb + "
            f"{self.controller_sequential:.0f} seq = "
            f"{self.controller_total:.0f}\n"
            f"  datapath  : {self.datapath_register_sequential:.0f} "
            f"register seq + {self.datapath_mux_combinational:.0f} mux "
            f"comb = {self.datapath_total:.0f} "
            f"(+ {self.num_units} functional units)\n"
            f"  controller share of modelled area: "
            f"{100 * self.controller_fraction:.1f}%"
        )


def system_area_report(
    unit: DistributedControlUnit,
    width: int = 16,
    encoding_style: str = "binary",
) -> SystemAreaReport:
    """Roll controller and datapath structural areas into one report."""
    controller = unit.total_area(encoding_style)
    stats: DatapathStatistics = datapath_statistics(unit.bound)
    mux_literals = 0
    for _, port_a, port_b in stats.mux_inputs_by_unit:
        if port_a > 1:
            mux_literals += width * port_a
        if port_b > 1:
            mux_literals += width * port_b
    return SystemAreaReport(
        benchmark=unit.bound.dfg.name,
        width=width,
        controller_combinational=controller.combinational_area,
        controller_sequential=controller.sequential_area,
        datapath_register_sequential=(
            AREA_PER_FLIP_FLOP * width * stats.num_registers
        ),
        datapath_mux_combinational=float(mux_literals),
        num_units=stats.num_units,
    )
