"""Datapath RTL generation: registers, operand muxes, unit instances.

The controllers only emit ``OF``/``RE`` strobes; this module generates the
datapath they steer, completing the synthesizable picture:

* one result register per operation (written on its ``RE`` strobe — the
  paper's register-enable semantics),
* per-unit operand multiplexers selecting each bound operation's sources
  under its ``OF`` strobe (one-hot),
* one functional-unit instance per allocated unit; telescopic units
  expose their completion output as a port (the CSG itself is a
  technology cell — the bit-level models in :mod:`repro.resources` say
  what it computes, the netlist treats it as a black box),
* primary input/output ports for the dataflow interface.

:func:`datapath_statistics` reports the structural costs binding decides:
mux fan-ins, register count, wire count — the datapath-side numbers a
Table-1-style area discussion needs next to the controller area.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binding.binder import BoundDataflowGraph
from ..core.dfg import ConstRef, InputRef, OpRef
from ..core.ops import ResourceClass
from ..fsm.signals import operand_fetch, register_enable
from ..fsm.verilog import sanitize_identifier

_UNIT_OPERATORS = {
    ResourceClass.MULTIPLIER: "*",
    ResourceClass.ADDER: "+",
    ResourceClass.SUBTRACTOR: "-",
    ResourceClass.ALU: "+",
}


@dataclass(frozen=True)
class DatapathStatistics:
    """Structural datapath costs implied by a binding."""

    num_registers: int
    num_units: int
    mux_inputs_by_unit: tuple[tuple[str, int, int], ...]  # (unit, portA, portB)
    total_mux_inputs: int

    def render(self) -> str:
        lines = [
            f"datapath: {self.num_registers} result registers, "
            f"{self.num_units} units, "
            f"{self.total_mux_inputs} total mux inputs"
        ]
        for unit, a, b in self.mux_inputs_by_unit:
            lines.append(f"  {unit}: {a}-way / {b}-way operand muxes")
        return "\n".join(lines)


def datapath_statistics(bound: BoundDataflowGraph) -> DatapathStatistics:
    """Compute mux/register structure without emitting RTL."""
    mux_rows = []
    total = 0
    for unit in bound.used_units():
        ops = bound.ops_on_unit(unit.name)
        port_a = len({str(bound.dfg.op(op).operands[0]) for op in ops})
        port_b = len(
            {
                str(bound.dfg.op(op).operands[1])
                for op in ops
                if len(bound.dfg.op(op).operands) > 1
            }
        )
        mux_rows.append((unit.name, port_a, port_b))
        total += (port_a if port_a > 1 else 0) + (
            port_b if port_b > 1 else 0
        )
    return DatapathStatistics(
        num_registers=len(bound.dfg),
        num_units=len(bound.used_units()),
        mux_inputs_by_unit=tuple(mux_rows),
        total_mux_inputs=total,
    )


def _operand_expr(operand, width: int) -> str:
    if isinstance(operand, ConstRef):
        value = operand.value
        if value < 0:
            return f"-{width}'d{-value}"
        return f"{width}'d{value}"
    if isinstance(operand, InputRef):
        return sanitize_identifier(operand.name)
    assert isinstance(operand, OpRef)
    return f"r_{sanitize_identifier(operand.op)}"


def datapath_to_verilog(
    bound: BoundDataflowGraph,
    module_name: str = "datapath",
    width: int = 16,
) -> str:
    """Emit the datapath as one synthesizable Verilog module.

    Control inputs are the ``OF_*``/``RE_*`` strobes of the control unit;
    telescopic units additionally expose a ``C_<unit>`` output fed by a
    black-box CSG instance port (``csg_<unit>_done`` input at this
    abstraction level).
    """
    dfg = bound.dfg
    lines: list[str] = [f"// Datapath for {dfg.name}"]
    lines.append(f"module {sanitize_identifier(module_name)} (")
    lines.append("    input  wire clk,")
    lines.append("    input  wire rst_n,")
    ports: list[str] = []
    for name in dfg.inputs:
        ports.append(
            f"    input  wire signed [{width - 1}:0] "
            f"{sanitize_identifier(name)},"
        )
    for op in dfg:
        ports.append(
            f"    input  wire {sanitize_identifier(operand_fetch(op.name))},"
        )
        ports.append(
            f"    input  wire "
            f"{sanitize_identifier(register_enable(op.name))},"
        )
    for unit in bound.used_units():
        if unit.is_telescopic:
            ports.append(
                f"    input  wire csg_{sanitize_identifier(unit.name)}_done,"
            )
            ports.append(
                f"    output wire C_{sanitize_identifier(unit.name)},"
            )
    for out_name in dfg.outputs:
        ports.append(
            f"    output wire signed [{width - 1}:0] "
            f"out_{sanitize_identifier(out_name)},"
        )
    ports[-1] = ports[-1].rstrip(",")
    lines.extend(ports)
    lines.append(");")
    lines.append("")

    # Result registers.
    for op in dfg:
        lines.append(
            f"  reg signed [{width - 1}:0] r_{sanitize_identifier(op.name)};"
        )
    lines.append("")

    # Per-unit operand muxes and functional units.
    for unit in bound.used_units():
        ops = bound.ops_on_unit(unit.name)
        uid = sanitize_identifier(unit.name)
        for port_index in (0, 1):
            terms = []
            for op_name in ops:
                operands = dfg.op(op_name).operands
                if port_index >= len(operands):
                    continue
                strobe = sanitize_identifier(operand_fetch(op_name))
                expr = _operand_expr(operands[port_index], width)
                terms.append(
                    f"({{{width}{{{strobe}}}}} & {expr})"
                )
            mux = " | ".join(terms) if terms else f"{width}'d0"
            lines.append(
                f"  wire signed [{width - 1}:0] {uid}_in{port_index} = "
                f"{mux};"
            )
        op_symbol = _UNIT_OPERATORS[unit.resource_class]
        lines.append(
            f"  wire signed [{width - 1}:0] {uid}_out = "
            f"{uid}_in0 {op_symbol} {uid}_in1;"
        )
        if unit.is_telescopic:
            lines.append(
                f"  assign C_{uid} = csg_{uid}_done;  // CSG black box"
            )
        lines.append("")

    # Register writeback under RE strobes.
    lines.append("  always @(posedge clk or negedge rst_n) begin")
    lines.append("    if (!rst_n) begin")
    for op in dfg:
        lines.append(f"      r_{sanitize_identifier(op.name)} <= 0;")
    lines.append("    end else begin")
    for op in dfg:
        unit = bound.unit_of(op.name)
        re = sanitize_identifier(register_enable(op.name))
        lines.append(
            f"      if ({re}) r_{sanitize_identifier(op.name)} <= "
            f"{sanitize_identifier(unit.name)}_out;"
        )
    lines.append("    end")
    lines.append("  end")
    lines.append("")
    for out_name, op_name in dfg.outputs.items():
        lines.append(
            f"  assign out_{sanitize_identifier(out_name)} = "
            f"r_{sanitize_identifier(op_name)};"
        )
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
