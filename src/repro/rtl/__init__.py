"""RTL generation: datapath and whole-system Verilog."""

from .area import SystemAreaReport, system_area_report
from .datapath import (
    DatapathStatistics,
    datapath_statistics,
    datapath_to_verilog,
)
from .system import system_to_verilog
from .testbench import testbench_to_verilog

__all__ = [
    "DatapathStatistics",
    "SystemAreaReport",
    "datapath_statistics",
    "datapath_to_verilog",
    "system_area_report",
    "system_to_verilog",
    "testbench_to_verilog",
]
