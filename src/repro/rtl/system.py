"""Whole-system RTL: distributed control unit wired to its datapath."""

from __future__ import annotations

from ..control.distributed import DistributedControlUnit
from ..control.verilog_top import distributed_to_verilog
from ..fsm.signals import is_op_completion, operand_fetch, register_enable
from ..fsm.verilog import sanitize_identifier
from .datapath import datapath_to_verilog


def system_to_verilog(
    unit: DistributedControlUnit,
    top_name: str = "system_top",
    width: int = 16,
) -> str:
    """Controllers + datapath + the top level connecting them.

    The top level exposes the dataflow interface (primary inputs/outputs),
    clock/reset, and one ``csg_<unit>_done`` input per telescopic unit —
    the hole where a technology-specific completion-signal generator cell
    plugs in.
    """
    bound = unit.bound
    dfg = bound.dfg
    chunks = [
        distributed_to_verilog(unit, top_name=f"{dfg.name}_control"),
        datapath_to_verilog(
            bound, module_name=f"{dfg.name}_datapath", width=width
        ),
    ]

    lines: list[str] = [f"// System top for {dfg.name}"]
    lines.append(f"module {sanitize_identifier(top_name)} (")
    lines.append("    input  wire clk,")
    lines.append("    input  wire rst_n,")
    ports: list[str] = []
    for name in dfg.inputs:
        ports.append(
            f"    input  wire signed [{width - 1}:0] "
            f"{sanitize_identifier(name)},"
        )
    for tele in (u for u in bound.used_units() if u.is_telescopic):
        ports.append(
            f"    input  wire csg_{sanitize_identifier(tele.name)}_done,"
        )
    for out_name in dfg.outputs:
        ports.append(
            f"    output wire signed [{width - 1}:0] "
            f"out_{sanitize_identifier(out_name)},"
        )
    ports[-1] = ports[-1].rstrip(",")
    lines.extend(ports)
    lines.append(");")
    lines.append("")

    for op in dfg:
        lines.append(f"  wire {sanitize_identifier(operand_fetch(op.name))};")
        lines.append(
            f"  wire {sanitize_identifier(register_enable(op.name))};"
        )
    for tele in (u for u in bound.used_units() if u.is_telescopic):
        lines.append(f"  wire C_{sanitize_identifier(tele.name)};")
    lines.append("")

    # Control instance: external inputs are the TAU completion signals.
    conns = ["    .clk(clk)", "    .rst_n(rst_n)"]
    for fsm in unit.controllers.values():
        for signal in fsm.inputs:
            if not is_op_completion(signal):
                port = sanitize_identifier(signal)
                conns.append(f"    .{port}({port})")
        for signal in fsm.outputs:
            if not is_op_completion(signal):
                port = sanitize_identifier(signal)
                conns.append(f"    .{port}({port})")
    lines.append(
        f"  {sanitize_identifier(dfg.name)}_control u_control ("
    )
    lines.append(",\n".join(conns))
    lines.append("  );")
    lines.append("")

    conns = ["    .clk(clk)", "    .rst_n(rst_n)"]
    for name in dfg.inputs:
        port = sanitize_identifier(name)
        conns.append(f"    .{port}({port})")
    for op in dfg:
        of = sanitize_identifier(operand_fetch(op.name))
        re = sanitize_identifier(register_enable(op.name))
        conns.append(f"    .{of}({of})")
        conns.append(f"    .{re}({re})")
    for tele in (u for u in bound.used_units() if u.is_telescopic):
        uid = sanitize_identifier(tele.name)
        conns.append(f"    .csg_{uid}_done(csg_{uid}_done)")
        conns.append(f"    .C_{uid}(C_{uid})")
    for out_name in dfg.outputs:
        port = f"out_{sanitize_identifier(out_name)}"
        conns.append(f"    .{port}({port})")
    lines.append(
        f"  {sanitize_identifier(dfg.name)}_datapath u_datapath ("
    )
    lines.append(",\n".join(conns))
    lines.append("  );")
    lines.append("")
    lines.append("endmodule")
    chunks.append("\n".join(lines) + "\n")
    return "\n\n".join(chunks)
