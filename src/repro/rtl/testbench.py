"""Self-checking Verilog testbench generation.

Generates a testbench for the system top (controllers + datapath) that
replays a scenario the Python simulator already executed: it drives the
primary inputs, presents each telescopic unit's CSG outcome cycle by
cycle (sampled from the recorded trace), waits the simulated number of
clock cycles, and asserts every primary output against the value the
value-checking datapath computed.  Running it under any Verilog simulator
is a co-simulation check of the generated RTL against this library's
reference semantics.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..api import SynthesisResult
from ..errors import SimulationError
from ..fsm.verilog import sanitize_identifier
from ..sim.simulator import SimulationResult


def testbench_to_verilog(
    result: SynthesisResult,
    sim: SimulationResult,
    inputs: Mapping[str, int],
    top_name: str = "system_top",
    width: int = 16,
    clock_ns: float = 15.0,
) -> str:
    """Render a self-checking testbench for one simulated scenario.

    ``sim`` must carry a recorded trace (``record_trace=True``) and a
    datapath (``inputs=...``) so per-cycle CSG values and golden outputs
    are available.
    """
    if sim.trace is None:
        raise SimulationError("testbench needs a recorded trace")
    if sim.datapath is None:
        raise SimulationError("testbench needs datapath golden values")
    dfg = result.dfg
    telescopic = [
        u for u in result.bound.used_units() if u.is_telescopic
    ]
    golden = sim.datapath.output_values()

    half = clock_ns / 2.0
    lines: list[str] = []
    lines.append(f"// Self-checking testbench for {dfg.name}")
    lines.append("`timescale 1ns/1ps")
    lines.append(f"module tb_{sanitize_identifier(dfg.name)};")
    lines.append("  reg clk = 1'b0;")
    lines.append("  reg rst_n = 1'b0;")
    for name in dfg.inputs:
        lines.append(
            f"  reg signed [{width - 1}:0] {sanitize_identifier(name)} = "
            f"{_literal(inputs[name], width)};"
        )
    for unit in telescopic:
        lines.append(f"  reg csg_{sanitize_identifier(unit.name)}_done;")
    for out_name in dfg.outputs:
        lines.append(
            f"  wire signed [{width - 1}:0] "
            f"out_{sanitize_identifier(out_name)};"
        )
    lines.append("  integer errors = 0;")
    lines.append("")
    lines.append(f"  always #{half:g} clk = ~clk;")
    lines.append("")
    conns = ["    .clk(clk)", "    .rst_n(rst_n)"]
    for name in dfg.inputs:
        port = sanitize_identifier(name)
        conns.append(f"    .{port}({port})")
    for unit in telescopic:
        uid = sanitize_identifier(unit.name)
        conns.append(f"    .csg_{uid}_done(csg_{uid}_done)")
    for out_name in dfg.outputs:
        port = f"out_{sanitize_identifier(out_name)}"
        conns.append(f"    .{port}({port})")
    lines.append(f"  {sanitize_identifier(top_name)} dut (")
    lines.append(",\n".join(conns))
    lines.append("  );")
    lines.append("")
    lines.append("  initial begin")
    lines.append(f"    repeat (2) @(negedge clk);")
    lines.append("    rst_n = 1'b1;")
    # Replay the CSG outcomes the Python simulation sampled.
    for record in sim.trace.records:
        completions = dict(record.unit_completions)
        lines.append("    @(negedge clk);")
        for unit in telescopic:
            uid = sanitize_identifier(unit.name)
            value = 1 if completions.get(unit.name, False) else 0
            lines.append(f"    csg_{uid}_done = 1'b{value};")
    lines.append("    @(negedge clk);")
    lines.append("    // Golden outputs from the reference datapath:")
    for out_name in dfg.outputs:
        port = f"out_{sanitize_identifier(out_name)}"
        expected = _literal(golden[out_name], width)
        lines.append(f"    if ({port} !== {expected}) begin")
        lines.append(
            f'      $display("FAIL {out_name}: got %0d, expected '
            f'{golden[out_name]}", {port});'
        )
        lines.append("      errors = errors + 1;")
        lines.append("    end")
    lines.append('    if (errors == 0) $display("PASS");')
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _literal(value: int, width: int) -> str:
    if value < 0:
        return f"-{width}'sd{-value}"
    return f"{width}'sd{value}"
