"""Supervised process pools: crash-, hang- and failure-tolerant maps.

:func:`supervised_map` executes the same order-preserving, pure map as
:func:`repro.perf.engine.parallel_map`, but under a
:class:`~repro.runtime.policy.RunPolicy`:

* **Worker crashes** (``BrokenProcessPoolError``) restart the pool and
  re-run only the lost chunks.  A crash inside a multi-item chunk is
  unattributable, so the survivors are re-submitted as single-item
  chunks; a crashing single item consumes one unit of its retry
  budget per attempt.
* **Failures** are caught *per item inside the worker* (the chunk
  runner returns per-item outcomes), so one bad trial never discards
  its chunk siblings.  Failed items are retried with exponential
  backoff and deterministic jitter, then handled per
  ``policy.on_failure``.
* **Hangs** are bounded by the per-item timeout: an expired chunk is
  abandoned and degraded to in-process execution (chaos injection is
  worker-only, so the degraded run is clean).  When hung workers
  exhaust the pool, the pool is rebuilt.

Every recovery is recorded as a structured event in the
:class:`~repro.runtime.policy.RunReport` in effect.  Because work items
are pure functions of their payload, none of this changes the result:
the returned list is byte-identical to ``[fn(x) for x in items]``
(modulo ``None`` holes under ``on_failure="skip"``).
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import TypeVar

from ..errors import SupervisionError
from .chaos import ChaosConfig, chaos_apply
from .policy import RunPolicy, RunReport, current_report

_T = TypeVar("_T")
_R = TypeVar("_R")

#: placeholder for a not-yet-computed result slot
_PENDING = object()

#: idle poll interval of the supervision loop (seconds)
_TICK_S = 0.5


@dataclass(frozen=True)
class _Chunk:
    """A contiguous run of work items with their global indices."""

    indices: tuple[int, ...]
    items: tuple


def _run_chunk(
    fn: Callable, indices: tuple[int, ...], items: tuple,
    chaos: "ChaosConfig | None",
) -> list[tuple]:
    """Worker-side chunk runner returning per-item outcomes.

    Failures are converted to ``("err", detail)`` records instead of
    propagating, so one bad item cannot discard the results of its
    chunk siblings, and the supervisor knows exactly which item failed
    without an isolation round-trip.
    """
    outcomes: list[tuple] = []
    for index, item in zip(indices, items):
        try:
            chaos_apply(chaos, index)
            outcomes.append(("ok", fn(item)))
        except Exception as exc:
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            outcomes.append(("err", detail))
    return outcomes


def _next_wait(pending: dict) -> float:
    """Wait budget until the nearest chunk deadline (clamped)."""
    deadlines = [dl for (_, dl) in pending.values() if dl is not None]
    if not deadlines:
        return _TICK_S
    return min(max(min(deadlines) - time.monotonic(), 0.01), _TICK_S)


def supervised_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    workers: int,
    chunksize: int,
    policy: RunPolicy,
    report: "RunReport | None" = None,
    on_result: "Callable[[int, _R], None] | None" = None,
) -> list:
    """Order-preserving map of ``fn`` over ``items`` under supervision.

    Behaves like ``[fn(x) for x in items]`` executed on a process pool
    of ``workers``, except that worker crashes, per-item failures and
    hung chunks are recovered per ``policy`` instead of aborting the
    run.  ``on_result(index, value)`` is invoked in the supervising
    process as each item completes (in completion order, each index
    exactly once) — the checkpoint journal's incremental-persistence
    hook.

    Raises :class:`~repro.errors.SupervisionError` when an item
    exhausts its budget under ``on_failure="retry"``/``"raise"``.
    """
    report = report if report is not None else current_report()
    if report is None:
        report = RunReport()  # discarded collector; recording never fails

    work = list(items)
    n = len(work)
    results: list = [_PENDING] * n
    attempts = [0] * n
    budget = policy.retry_budget()
    queue: deque[_Chunk] = deque(
        _Chunk(
            indices=tuple(range(low, min(low + chunksize, n))),
            items=tuple(work[low:low + chunksize]),
        )
        for low in range(0, n, chunksize)
    )
    pending: "dict[Future, tuple[_Chunk, float | None]]" = {}
    pool = ProcessPoolExecutor(max_workers=workers)
    abandoned = 0

    def store(index: int, value) -> None:
        # idempotent: duplicate deliveries (e.g. a chunk re-run after a
        # pool restart racing its abandoned twin) are dropped
        if results[index] is not _PENDING:
            return
        results[index] = value
        if on_result is not None:
            on_result(index, value)

    def single(index: int) -> _Chunk:
        return _Chunk(indices=(index,), items=(work[index],))

    def requeue_pending_of(chunk: _Chunk) -> None:
        for index in chunk.indices:
            if results[index] is _PENDING:
                queue.append(single(index))

    def restart_pool(why: str) -> None:
        nonlocal pool, abandoned
        report.record("pool-restart", why)
        for dead_future, (chunk, _) in pending.items():
            dead_future.cancel()
            requeue_pending_of(chunk)
        pending.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=workers)
        abandoned = 0

    def exhaust(index: int, detail: str) -> None:
        if policy.on_failure == "skip":
            report.record(
                "skip",
                f"dropped after {attempts[index]} attempt(s): {detail}",
                item=index,
                attempt=attempts[index],
            )
            store(index, None)
            return
        if policy.on_failure == "serial":
            report.record(
                "serial-degrade",
                f"final in-process attempt after "
                f"{attempts[index]} pool attempt(s): {detail}",
                item=index,
                attempt=attempts[index],
            )
            store(index, fn(work[index]))
            return
        raise SupervisionError(
            f"work item {index} failed after {attempts[index]} "
            f"attempt(s): {detail}",
            item=index,
            attempts=attempts[index],
        )

    def handle_failure(index: int, detail: str) -> None:
        attempts[index] += 1
        if attempts[index] >= budget:
            exhaust(index, detail)
            return
        report.record(
            "retry", detail, item=index, attempt=attempts[index]
        )
        time.sleep(policy.backoff_delay(index, attempts[index]))
        queue.append(single(index))

    def submit_ready() -> None:
        while queue:
            chunk = queue[0]
            try:
                future = pool.submit(
                    _run_chunk, fn, chunk.indices, chunk.items,
                    policy.chaos,
                )
            except BrokenExecutor:
                restart_pool("pool broken at submission; rebuilt")
                continue
            queue.popleft()
            deadline = policy.chunk_deadline_s(len(chunk.indices))
            pending[future] = (
                chunk,
                None if deadline is None
                else time.monotonic() + deadline,
            )

    try:
        while queue or pending or any(
            r is _PENDING for r in results
        ):
            submit_ready()
            if not pending:
                if queue:
                    continue
                # no pending work, no queue, but holes remain: every
                # path above either stores, requeues or raises, so this
                # is unreachable — guard against silent data loss anyway
                raise SupervisionError(
                    "supervised map lost work items"
                )  # pragma: no cover
            done, _ = wait(
                set(pending),
                timeout=_next_wait(pending),
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                chunk, _deadline = pending.pop(future)
                try:
                    outcomes = future.result()
                except BrokenExecutor:
                    broken = True
                    report.record(
                        "worker-crash",
                        "worker process died running items "
                        f"{list(chunk.indices)}",
                    )
                    if len(chunk.indices) == 1:
                        handle_failure(
                            chunk.indices[0], "worker process crashed"
                        )
                    else:
                        # the culprit is unknown inside a chunk:
                        # isolate by re-running survivors one at a time
                        report.record(
                            "isolate",
                            f"re-running items {list(chunk.indices)} "
                            "individually to find the crashing one",
                        )
                        requeue_pending_of(chunk)
                except Exception as exc:
                    # chunk-level transport failure (result failed to
                    # pickle, ...): the workers are fine, the payload
                    # is not — degrade this chunk to in-process
                    report.record(
                        "serial-degrade",
                        f"chunk {list(chunk.indices)} failed in "
                        f"transit ({exc!r}); re-ran in-process",
                    )
                    for index in chunk.indices:
                        if results[index] is _PENDING:
                            store(index, fn(work[index]))
                else:
                    for index, outcome in zip(chunk.indices, outcomes):
                        if outcome[0] == "ok":
                            store(index, outcome[1])
                        else:
                            handle_failure(index, outcome[1])
            if broken:
                restart_pool(
                    "process pool broken by a worker crash; "
                    "re-running lost chunks"
                )
                continue
            now = time.monotonic()
            expired = [
                future
                for future, (_, deadline) in pending.items()
                if deadline is not None and now >= deadline
            ]
            for future in expired:
                chunk, _deadline = pending.pop(future)
                future.cancel()
                abandoned += 1
                report.record(
                    "timeout",
                    f"chunk {list(chunk.indices)} exceeded "
                    f"{policy.chunk_deadline_s(len(chunk.indices)):.3f}s",
                )
                report.record(
                    "timeout-degrade",
                    f"re-running items {list(chunk.indices)} "
                    "in-process",
                )
                for index in chunk.indices:
                    if results[index] is _PENDING:
                        store(index, fn(work[index]))
            if abandoned >= workers and (pending or queue):
                restart_pool(
                    "hung workers exhausted the pool; rebuilt"
                )
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results
