"""Execution-resilience layer: supervised pools, journals, run reports.

``repro.runtime`` sits beneath :mod:`repro.perf` and makes the slow and
failing cases of long campaigns *safe* without changing what the fast
case computes:

* :class:`~repro.runtime.policy.RunPolicy` — per-item timeouts, retry
  budgets with exponential backoff and deterministic jitter, and a
  choice of last-resort behaviours, interpreted by the supervised
  process pool in :mod:`repro.runtime.supervisor`;
* :class:`~repro.runtime.policy.RunReport` — the structured record of
  every recovery event (worker crashes, pool restarts, retries,
  timeout degradations, quarantined cache entries) a resilient run
  performed on the way to its byte-identical result;
* :class:`~repro.runtime.journal.CheckpointJournal` — a crash-safe,
  content-addressed shard journal giving long drivers checkpoint /
  resume (``repro resume``) with output byte-identical to an
  uninterrupted run;
* :class:`~repro.runtime.chaos.ChaosConfig` — deterministic worker
  crash/failure/hang injection for exercising the supervisor itself.
"""

from .chaos import ChaosConfig, ChaosFailure
from .journal import CheckpointJournal, checkpointed_map
from .policy import (
    RecoveryEvent,
    RunPolicy,
    RunReport,
    active_report,
    current_report,
)
from .supervisor import supervised_map

__all__ = [
    "ChaosConfig",
    "ChaosFailure",
    "CheckpointJournal",
    "checkpointed_map",
    "RecoveryEvent",
    "RunPolicy",
    "RunReport",
    "active_report",
    "current_report",
    "supervised_map",
]
