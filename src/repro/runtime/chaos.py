"""Deterministic worker- and node-failure injection for drills.

The fault injectors in :mod:`repro.faults` attack the *simulated
hardware*; this module attacks the *host runtime* — worker processes of
a supervised pool and worker nodes of the distributed campaign fabric.
A :class:`ChaosConfig` names global work-item indices at which a worker
should crash (``os._exit``), raise, or hang, so tests and the CI
chaos-smoke job can prove that a campaign survives real process death
with byte-identical output.

Item-level injection happens inside the worker (the supervised chunk
runner and the fabric worker both call :func:`chaos_apply` before each
item), never in the supervising process: a crash must kill a *worker*,
not the run.  With ``once=True`` (the default) each chosen index fires
a single time across the whole run — claimed atomically via an
``O_EXCL`` marker file in ``sentinel_dir``, which works across
processes and pool restarts — so the retried attempt succeeds and the
run completes.

Node-level injection targets the fabric runtime specifically:

* ``node_kill_items`` — the worker node leasing that shard SIGKILLs
  its own process (a literal ``kill -9`` mid-campaign; the coordinator
  must detect the loss, revoke the lease and reassign the shard);
* ``partition_items`` — the node computes the shard, then severs its
  connection and exits *without reporting the result* (a network
  partition after the work was done; the shard must be recomputed
  elsewhere, byte-identically);
* ``slow_heartbeat_nodes`` — those node ids stretch their heartbeat
  interval by ``heartbeat_slowdown``, so the coordinator declares them
  lost and revokes their leases even though they are alive — their
  late shard commits must be tolerated idempotently.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from ..errors import SimulationError


class ChaosFailure(Exception):
    """The deliberate exception raised by ``fail_items`` injection.

    Not a :class:`~repro.errors.ReproError`: chaos failures model
    arbitrary third-party worker exceptions, so they must not be
    catchable as a library error.
    """


@dataclass(frozen=True)
class ChaosConfig:
    """Which work items a worker should crash, fail or hang on.

    Indices are *global* item positions in the supervised map's (or
    fabric run's) work list; ``slow_heartbeat_nodes`` entries are
    fabric node ids.  ``once=True`` requires ``sentinel_dir`` (a
    directory shared by all workers) so each injection fires exactly
    once; without it, the injection repeats on every attempt — useful
    for proving that retry budgets are enforced.
    """

    crash_items: tuple[int, ...] = ()
    fail_items: tuple[int, ...] = ()
    hang_items: tuple[int, ...] = ()
    hang_s: float = 5.0
    node_kill_items: tuple[int, ...] = ()
    partition_items: tuple[int, ...] = ()
    slow_heartbeat_nodes: tuple[int, ...] = ()
    heartbeat_slowdown: float = 25.0
    once: bool = True
    sentinel_dir: "str | None" = None

    def __post_init__(self) -> None:
        if self.once and self.any_items() and self.sentinel_dir is None:
            raise SimulationError(
                "ChaosConfig(once=True) needs sentinel_dir to track "
                "which injections already fired"
            )
        if self.heartbeat_slowdown < 1.0:
            raise SimulationError(
                "heartbeat_slowdown must be >= 1, got "
                f"{self.heartbeat_slowdown}"
            )

    def any_items(self) -> bool:
        return bool(
            self.crash_items
            or self.fail_items
            or self.hang_items
            or self.node_kill_items
            or self.partition_items
        )

    def _claim(self, kind: str, index: int) -> bool:
        """Atomically claim one injection; False if it already fired."""
        if not self.once:
            return True
        marker = os.path.join(
            self.sentinel_dir, f"chaos-{kind}-{index}"
        )
        try:
            handle = os.open(
                marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(handle)
        return True

    def claim_partition(self, index: int) -> bool:
        """True when shard ``index`` should trigger a partition now.

        Called by the fabric worker after computing the shard but
        before reporting the result; a claimed partition severs the
        connection, leaving the coordinator to revoke the lease and
        recompute the finished-but-unreported shard elsewhere.
        """
        return index in self.partition_items and self._claim(
            "partition", index
        )

    def heartbeat_scale(self, node_id: int) -> float:
        """Heartbeat-interval multiplier for fabric node ``node_id``."""
        if node_id in self.slow_heartbeat_nodes:
            return self.heartbeat_slowdown
        return 1.0


def chaos_apply(chaos: "ChaosConfig | None", index: int) -> None:
    """Run the configured injection for global item ``index``, if any.

    Called by the worker-side chunk runner (and the fabric worker)
    immediately before each item.  Crash kills the worker process with
    exit code 1; node-kill delivers SIGKILL to the worker's own
    process (indistinguishable from an operator ``kill -9``); fail
    raises :class:`ChaosFailure`; hang sleeps ``hang_s`` seconds (long
    enough to trip any reasonable per-item timeout or lease deadline).
    """
    if chaos is None:
        return
    if index in chaos.crash_items and chaos._claim("crash", index):
        os._exit(1)
    if index in chaos.node_kill_items and chaos._claim("kill", index):
        os.kill(os.getpid(), signal.SIGKILL)
    if index in chaos.fail_items and chaos._claim("fail", index):
        raise ChaosFailure(
            f"injected worker failure on item {index}"
        )
    if index in chaos.hang_items and chaos._claim("hang", index):
        time.sleep(chaos.hang_s)
