"""Deterministic worker-failure injection for supervisor drills.

The fault injectors in :mod:`repro.faults` attack the *simulated
hardware*; this module attacks the *host runtime* — worker processes of
a supervised pool.  A :class:`ChaosConfig` names global work-item
indices at which a worker should crash (``os._exit``), raise, or hang,
so tests and the CI chaos-smoke job can prove that a campaign survives
real process death with byte-identical output.

Injection happens inside the worker (the supervised chunk runner calls
:func:`chaos_apply` before each item), never in the supervising
process: a crash must kill a *worker*, not the run.  With ``once=True``
(the default) each chosen index fires a single time across the whole
run — claimed atomically via an ``O_EXCL`` marker file in
``sentinel_dir``, which works across processes and pool restarts — so
the retried attempt succeeds and the run completes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..errors import SimulationError


class ChaosFailure(Exception):
    """The deliberate exception raised by ``fail_items`` injection.

    Not a :class:`~repro.errors.ReproError`: chaos failures model
    arbitrary third-party worker exceptions, so they must not be
    catchable as a library error.
    """


@dataclass(frozen=True)
class ChaosConfig:
    """Which work items a worker should crash, fail or hang on.

    Indices are *global* item positions in the supervised map's work
    list.  ``once=True`` requires ``sentinel_dir`` (a directory shared
    by all workers) so each injection fires exactly once; without it,
    the injection repeats on every attempt — useful for proving that
    retry budgets are enforced.
    """

    crash_items: tuple[int, ...] = ()
    fail_items: tuple[int, ...] = ()
    hang_items: tuple[int, ...] = ()
    hang_s: float = 5.0
    once: bool = True
    sentinel_dir: "str | None" = None

    def __post_init__(self) -> None:
        if self.once and self.any_items() and self.sentinel_dir is None:
            raise SimulationError(
                "ChaosConfig(once=True) needs sentinel_dir to track "
                "which injections already fired"
            )

    def any_items(self) -> bool:
        return bool(
            self.crash_items or self.fail_items or self.hang_items
        )

    def _claim(self, kind: str, index: int) -> bool:
        """Atomically claim one injection; False if it already fired."""
        if not self.once:
            return True
        marker = os.path.join(
            self.sentinel_dir, f"chaos-{kind}-{index}"
        )
        try:
            handle = os.open(
                marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(handle)
        return True


def chaos_apply(chaos: "ChaosConfig | None", index: int) -> None:
    """Run the configured injection for global item ``index``, if any.

    Called by the worker-side chunk runner immediately before each
    item.  Crash kills the worker process with exit code 1; fail raises
    :class:`ChaosFailure`; hang sleeps ``hang_s`` seconds (long enough
    to trip any reasonable per-item timeout).
    """
    if chaos is None:
        return
    if index in chaos.crash_items and chaos._claim("crash", index):
        os._exit(1)
    if index in chaos.fail_items and chaos._claim("fail", index):
        raise ChaosFailure(
            f"injected worker failure on item {index}"
        )
    if index in chaos.hang_items and chaos._claim("hang", index):
        time.sleep(chaos.hang_s)
