"""Crash-safe, content-addressed checkpoint journal for long drivers.

A long campaign is a map of a pure function over trial indices; losing
hours of completed trials to one ``KeyboardInterrupt`` is pure waste.
The journal persists each completed *shard* (one trial's result) the
moment it exists:

* **content-addressed** — a shard's file name is the SHA-256 of the
  driver's *run key* (everything that determines the result: design
  fingerprint, trial counts, seeds, probabilities) plus the shard id,
  so journals of different runs coexist in one directory and a resumed
  run can only ever replay its own shards;
* **crash-safe** — every write goes to a temporary file in the same
  directory, is flushed and ``fsync``'d, then published with the
  atomic ``os.replace``; a shard is either fully present or absent,
  never torn;
* **self-verifying** — the payload (pickle of the shard value) is
  prefixed with its own SHA-256; a truncated or bit-rotten shard fails
  verification, is quarantined (renamed ``*.corrupt``) and recomputed
  instead of poisoning the resumed run.

:func:`checkpointed_map` is the driver-facing wrapper: replay the
shards the journal already has, compute only the missing ones (through
:func:`~repro.perf.engine.parallel_map`, so supervision and
parallelism compose), and persist each new result as it arrives.  A
resumed run therefore produces output byte-identical to an
uninterrupted one.

Shards are pickles: the journal is a private scratch format for
resuming *your own* runs from a directory you control, not an exchange
format — never point it at untrusted data.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

from ..errors import CheckpointError, CheckpointInterrupted
from .policy import RunPolicy, RunReport, record_event

_T = TypeVar("_T")
_R = TypeVar("_R")

#: suffix of journal shard files
SHARD_SUFFIX = ".shard.pkl"

#: placeholder for a shard the journal does not have
_MISSING = object()


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp + fsync + rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` never crosses a filesystem boundary; a crash at any
    point leaves either the old file or the new file, never a torn mix.
    """
    directory = os.path.dirname(path) or "."
    handle, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".write"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(payload)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str) -> None:
    """Atomic UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode())


class CheckpointJournal:
    """Directory of checksummed, atomically written result shards.

    ``max_new_shards`` is the deterministic interruption hook: after
    persisting that many *new* shards the journal raises
    :class:`~repro.errors.CheckpointInterrupted`, leaving the directory
    exactly as a real mid-run kill would — tests and chaos drills
    resume from it with a fresh journal over the same path.

    Counters: ``new_shards`` (persisted this run), ``replayed``
    (served from disk this run), ``quarantined`` (corrupt shards moved
    aside this run).

    ``report`` optionally pins the :class:`~repro.runtime.policy.
    RunReport` that receives quarantine events; without it they land
    in the ambient :func:`~repro.runtime.policy.active_report`, and
    are silently dropped only when neither exists.
    """

    def __init__(
        self,
        path: str,
        *,
        max_new_shards: "int | None" = None,
        report: "RunReport | None" = None,
    ) -> None:
        self.path = str(path)
        self.max_new_shards = max_new_shards
        self.report = report
        self.new_shards = 0
        self.replayed = 0
        self.quarantined = 0
        try:
            os.makedirs(self.path, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory "
                f"{self.path!r}: {exc}"
            ) from exc

    @staticmethod
    def key(run_key: str, shard: object) -> str:
        """Content address of one shard of one run."""
        return hashlib.sha256(
            f"{run_key}#{shard}".encode()
        ).hexdigest()

    def shard_file(self, key: str) -> str:
        return os.path.join(self.path, f"{key}{SHARD_SUFFIX}")

    def _quarantine(self, key: str, reason: str) -> None:
        file_path = self.shard_file(key)
        try:
            os.replace(file_path, file_path + ".corrupt")
        except OSError:  # pragma: no cover - racing cleanup
            pass
        self.quarantined += 1
        record_event(
            self.report,
            "journal-quarantine",
            f"shard {key[:12]}… in {self.path} {reason}; it will be "
            f"restored from a replica or recomputed",
        )

    def get(self, key: str) -> "tuple[bool, object]":
        """``(True, value)`` for a verified shard, else ``(False, None)``.

        A shard that exists but fails its checksum or does not unpickle
        is quarantined and reported as missing — the caller recomputes
        it, and the journal heals itself.
        """
        try:
            with open(self.shard_file(key), "rb") as handle:
                blob = handle.read()
        except (FileNotFoundError, OSError):
            return False, None
        newline = blob.find(b"\n")
        if newline != 64:
            self._quarantine(key, "has a malformed header")
            return False, None
        digest, payload = blob[:newline], blob[newline + 1:]
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            self._quarantine(key, "failed its payload checksum")
            return False, None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._quarantine(key, "failed to unpickle")
            return False, None
        self.replayed += 1
        return True, value

    def put(self, key: str, value: object) -> None:
        """Persist one shard atomically; honours ``max_new_shards``."""
        if (
            self.max_new_shards is not None
            and self.new_shards >= self.max_new_shards
        ):
            raise CheckpointInterrupted(
                f"checkpoint budget of {self.max_new_shards} new "
                f"shard(s) reached",
                shards_written=self.new_shards,
            )
        payload = pickle.dumps(value, protocol=4)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        atomic_write_bytes(self.shard_file(key), digest + b"\n" + payload)
        self.new_shards += 1

    def restore(self, key: str, blob: bytes) -> None:
        """Repair one shard from its replica twin's verified bytes.

        Bypasses ``max_new_shards`` and the ``new_shards`` counter:
        a repair replays work that was already paid for, so it must
        neither consume the deterministic-interruption budget nor look
        like fresh progress.
        """
        atomic_write_bytes(self.shard_file(key), blob)

    def corrupt_files(self) -> list[str]:
        """Quarantined (``*.corrupt``) shard files in this journal."""
        try:
            entries = os.listdir(self.path)
        except OSError:
            return []
        return sorted(
            os.path.join(self.path, name)
            for name in entries
            if name.endswith(".corrupt")
        )


def resolve_journal(
    checkpoint: "CheckpointJournal | str | None",
) -> "CheckpointJournal | None":
    """Accept a journal, a directory path, or ``None``."""
    if checkpoint is None or isinstance(checkpoint, CheckpointJournal):
        return checkpoint
    return CheckpointJournal(str(checkpoint))


def checkpointed_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    run_key: str,
    checkpoint: "CheckpointJournal | str | None",
    workers: "int | None" = 1,
    chunksize: "int | None" = None,
    policy: "RunPolicy | None" = None,
    report: "RunReport | None" = None,
    fabric=None,
) -> list:
    """:func:`~repro.perf.engine.parallel_map` through a journal.

    Shards already in the journal (keyed by ``run_key`` and item
    position) are replayed; only the missing items are computed, and
    each new result is persisted the moment it completes — out of
    order under parallelism, which is safe because the shard id is the
    item's position.  With ``checkpoint=None`` this is exactly
    ``parallel_map``.

    ``fabric`` (a :class:`~repro.fabric.FabricConfig`) reroutes the
    missing-shard computation through the distributed campaign fabric:
    worker *nodes* lease shards from a coordinator over TCP and every
    result is committed to a replicated journal before it is
    acknowledged — same keys, same bytes, so serial, parallel and
    fabric runs all resume each other's checkpoint directories.
    Requires ``checkpoint``.
    """
    from ..perf.engine import parallel_map

    journal = resolve_journal(checkpoint)
    if journal is not None and journal.report is None:
        journal.report = report
    if fabric is not None:
        from ..fabric.runtime import fabric_map

        return fabric_map(
            fn,
            items,
            run_key=run_key,
            checkpoint=journal,
            config=fabric,
            policy=policy,
            report=report,
        )
    work: Sequence[_T] = list(items)
    if journal is None:
        return parallel_map(
            fn, work, workers=workers, chunksize=chunksize,
            policy=policy, report=report,
        )
    keys = [journal.key(run_key, index) for index in range(len(work))]
    results: list = []
    missing: list[int] = []
    for index, key in enumerate(keys):
        found, value = journal.get(key)
        results.append(value if found else _MISSING)
        if not found:
            missing.append(index)
    if missing:

        def persist(position: int, value) -> None:
            index = missing[position]
            journal.put(keys[index], value)
            results[index] = value

        parallel_map(
            fn,
            [work[index] for index in missing],
            workers=workers,
            chunksize=chunksize,
            policy=policy,
            report=report,
            on_result=persist,
        )
    return results
