"""Run policies and structured recovery reporting.

A :class:`RunPolicy` tells the supervised pool *how hard to try*: the
per-item timeout, the retry budget, the backoff between attempts, and
what to do once the budget is spent.  A :class:`RunReport` records what
the supervisor (and the self-healing caches and journals) actually had
to do — every recovery is an explicit, structured event, never a silent
code path.

The report is threaded two ways: explicitly (``report=`` keyword on
:func:`~repro.perf.engine.parallel_map` and the long drivers) or
ambiently via :func:`active_report`, a context manager the CLI wraps
around whole commands so that components without a report parameter
(the content-addressed caches, the checkpoint journal) can still
account for their quarantines.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chaos import ChaosConfig

#: last-resort behaviours once an item's retry budget is spent
ON_FAILURE_CHOICES = ("retry", "serial", "skip", "raise")

#: recovery-event kinds a :class:`RunReport` may contain
EVENT_KINDS = (
    "retry",  # a failed item was resubmitted to the pool
    "worker-crash",  # a worker process died (BrokenProcessPool)
    "pool-restart",  # the process pool was rebuilt after a crash
    "isolate",  # a failed multi-item chunk was split for re-execution
    "timeout",  # a chunk exceeded its deadline
    "timeout-degrade",  # a hung chunk was re-executed in-process
    "serial-degrade",  # an exhausted item ran its last attempt in-process
    "skip",  # an exhausted item was dropped (result is None)
    "serial-fallback",  # an unpicklable payload lost its -j speedup
    "parallel-amortization",  # probe-based serial-vs-pool decision
    "batch-engine",  # Monte-Carlo trials ran on the vectorized engine
    "cache-quarantine",  # a corrupt cache entry was moved aside
    "journal-quarantine",  # a corrupt checkpoint shard was moved aside
    "journal-repair",  # a shard was restored from its replica twin
    "lease-revoke",  # a fabric shard lease expired and was reassigned
    "node-loss",  # a fabric worker node died or went silent
    "node-restart",  # a replacement fabric worker node was spawned
)


@dataclass(frozen=True)
class RunPolicy:
    """How a supervised map treats slow and failing work items.

    ``timeout_s`` is the per-*item* deadline — a chunk of *k* items gets
    ``k * timeout_s`` before it is declared hung and degraded to
    in-process execution.  ``max_retries`` bounds pool re-submissions of
    one item after a failure; between attempts the supervisor sleeps an
    exponential backoff with a deterministic jitter derived from the
    item index and attempt number (never from the wall clock), so two
    identical runs recover along identical schedules.

    ``on_failure`` picks the last resort once retries are exhausted:

    * ``"retry"`` — retry up to the budget, then raise
      :class:`~repro.errors.SupervisionError` (the default);
    * ``"serial"`` — retry, then run the item once in the supervising
      process (immune to worker crashes, not to real exceptions);
    * ``"skip"`` — retry, then drop the item: its result is ``None``
      and a ``"skip"`` event is recorded;
    * ``"raise"`` — fail fast on the first failure, no retries.

    ``chaos`` optionally injects deterministic worker crashes, failures
    and hangs (see :mod:`repro.runtime.chaos`) — the supervisor's own
    test harness, also used by the CI chaos-smoke drill.
    """

    timeout_s: "float | None" = None
    max_retries: int = 2
    backoff_s: float = 0.05
    on_failure: str = "retry"
    chaos: "ChaosConfig | None" = None

    def __post_init__(self) -> None:
        if self.on_failure not in ON_FAILURE_CHOICES:
            raise SimulationError(
                f"on_failure must be one of {ON_FAILURE_CHOICES}, "
                f"got {self.on_failure!r}"
            )
        if self.max_retries < 0:
            raise SimulationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SimulationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.backoff_s < 0:
            raise SimulationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )

    def retry_budget(self) -> int:
        """Pool attempts granted per item (1 + retries; 1 if fail-fast)."""
        if self.on_failure == "raise":
            return 1
        return 1 + self.max_retries

    def backoff_delay(self, item: int, attempt: int) -> float:
        """Backoff before re-attempting ``item`` (deterministic jitter).

        Exponential in the attempt number, scaled by a jitter in
        ``[0.5, 1.5)`` from the shared SHA-256
        :func:`~repro.perf.engine.deterministic_jitter` scheme —
        independent of process identity and the wall clock, so two
        identical runs (and the fabric's lease/heartbeat timers, which
        use the same scheme) recover along identical schedules.
        """
        if self.backoff_s == 0:
            return 0.0
        from ..perf.engine import deterministic_jitter

        jitter = deterministic_jitter("backoff", int(item), int(attempt))
        return self.backoff_s * (2 ** max(attempt - 1, 0)) * jitter

    def chunk_deadline_s(self, chunk_items: int) -> "float | None":
        """Wall-clock budget for one chunk, or ``None`` (no timeout)."""
        if self.timeout_s is None:
            return None
        return self.timeout_s * max(chunk_items, 1)


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action taken during a resilient run."""

    kind: str
    detail: str
    item: "int | None" = None
    attempt: "int | None" = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "item": self.item,
            "attempt": self.attempt,
        }


class RunReport:
    """Structured account of every recovery a resilient run performed.

    Mutable collector: the supervised pool, the self-healing caches and
    the checkpoint journal all append :class:`RecoveryEvent` records to
    the report in effect.  ``recoveries`` is the total event count —
    zero means the run was entirely clean.
    """

    def __init__(self) -> None:
        self.events: list[RecoveryEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    @property
    def recoveries(self) -> int:
        return len(self.events)

    def record(
        self,
        kind: str,
        detail: str,
        *,
        item: "int | None" = None,
        attempt: "int | None" = None,
    ) -> RecoveryEvent:
        if kind not in EVENT_KINDS:
            raise SimulationError(
                f"unknown recovery event kind {kind!r}; "
                f"choose from {EVENT_KINDS}"
            )
        event = RecoveryEvent(
            kind=kind, detail=detail, item=item, attempt=attempt
        )
        self.events.append(event)
        return event

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def counts(self) -> dict[str, int]:
        """Event counts by kind (only kinds that occurred)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return {k: out[k] for k in sorted(out)}

    def to_dict(self) -> dict:
        return {
            "recoveries": self.recoveries,
            "counts": self.counts(),
            "events": [e.to_dict() for e in self.events],
        }

    def render(self) -> str:
        if not self.events:
            return "run report: clean (no recoveries)"
        lines = [f"run report: {self.recoveries} recovery event(s)"]
        for kind, count in self.counts().items():
            lines.append(f"  {kind:17s} x{count}")
        for event in self.events:
            where = "" if event.item is None else f" [item {event.item}]"
            lines.append(f"  - {event.kind}{where}: {event.detail}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Ambient report context
# ----------------------------------------------------------------------
_ACTIVE: list[RunReport] = []


@contextmanager
def active_report(
    report: "RunReport | None" = None,
) -> Iterator[RunReport]:
    """Make ``report`` (or a fresh one) the ambient recovery collector.

    Components that take no ``report=`` parameter — the self-healing
    caches, the checkpoint journal — record their quarantines into the
    innermost active report.  Nesting is allowed; the innermost wins.
    """
    own = report if report is not None else RunReport()
    _ACTIVE.append(own)
    try:
        yield own
    finally:
        _ACTIVE.pop()


def current_report() -> "RunReport | None":
    """The innermost active report, or ``None`` outside any context."""
    return _ACTIVE[-1] if _ACTIVE else None


def record_event(
    report: "RunReport | None",
    kind: str,
    detail: str,
    *,
    item: "int | None" = None,
    attempt: "int | None" = None,
) -> None:
    """Record into ``report`` if given, else into the ambient report.

    Silently a no-op when neither exists — recovery reporting never
    becomes a reason for a run to fail.
    """
    target = report if report is not None else current_report()
    if target is not None:
        target.record(kind, detail, item=item, attempt=attempt)
