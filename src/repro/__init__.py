"""repro — distributed synchronous control units for dataflow graphs.

A full reproduction of *"Distributed Synchronous Control Units for Dataflow
Graphs under Allocation of Telescopic Arithmetic Units"* (Kim, Saito, Lee,
Lee, Nakamura, Nanya — DATE 2003) as a production-quality Python library:

* :mod:`repro.core` — dataflow-graph model and static analyses,
* :mod:`repro.resources` — fixed and telescopic arithmetic units,
  completion-signal models, bit-level datapaths and CSG synthesis,
* :mod:`repro.scheduling` — time-step, TAUBM and order-based scheduling,
* :mod:`repro.binding` — operation→unit and value→register binding,
* :mod:`repro.logic` — two-level boolean minimization for area analysis,
* :mod:`repro.fsm` — Algorithm 1 and the centralized TAUBM FSM builders,
* :mod:`repro.control` — distributed control-unit integration (Fig. 7),
* :mod:`repro.pipeline` — the pass-based synthesis pipeline: typed
  artifact store, stage registries, provenance manifests and per-pass
  content-addressed caching,
* :mod:`repro.sim` — cycle-accurate controller + datapath simulation,
* :mod:`repro.analysis` — exact/Monte-Carlo latency and area reporting,
* :mod:`repro.benchmarks` — the paper's DFG benchmark suite,
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart::

    from repro import synthesize
    from repro.benchmarks import differential_equation

    result = synthesize(differential_equation(), "mul:2T,add:1,sub:1")
    print(result.bound.describe())
    print(result.distributed.describe())
"""

from __future__ import annotations

from .api import SynthesisResult, synthesize
from .core import DataflowGraph, DFGBuilder, OpType, ResourceClass
from .pipeline import PassManager, RunManifest, run_synthesis_pipeline
from .resources import ResourceAllocation, TelescopicUnit

__version__ = "1.0.0"

__all__ = [
    "DFGBuilder",
    "DataflowGraph",
    "OpType",
    "PassManager",
    "ResourceAllocation",
    "ResourceClass",
    "RunManifest",
    "SynthesisResult",
    "TelescopicUnit",
    "__version__",
    "run_synthesis_pipeline",
    "synthesize",
]
